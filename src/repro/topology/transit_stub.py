"""GT-ITM Transit-Stub internetwork generator (re-implementation).

The Transit-Stub (TS) model of Zegura, Calvert & Bhattacharjee (paper
reference [17]) builds an internetwork in three tiers:

1. A small number of **transit domains** (backbone ASes), each a
   connected random graph of transit routers; transit domains are
   themselves connected at the top level.
2. Each transit router hosts several **stub domains** (edge ASes).
3. Each stub domain is a connected random graph of stub routers,
   attached to its transit router through a single *border* router.

The paper's simulations (§4.1) assign link delays by tier: 100 ms for
intra-transit links, 20 ms for stub–transit links, 5 ms for intra-stub
links.  We use the same defaults (inter-transit-domain links are treated
as intra-transit, i.e. 100 ms — the paper does not distinguish them).

Keeping exactly one border link per stub domain makes shortest-path
delays decomposable (stub ``→`` border ``→`` core ``→`` border ``→``
stub), which :class:`repro.topology.latency.TransitStubLatencyModel`
exploits for exact O(1) queries without a quadratic APSP matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology.base import ROUTER_STUB, ROUTER_TRANSIT, Topology
from repro.util.rng import make_rng
from repro.util.validation import require, require_positive

__all__ = ["TransitStubParams", "TransitStubTopology", "generate_transit_stub"]


@dataclass(frozen=True)
class TransitStubParams:
    """Structural and delay parameters of the Transit-Stub generator.

    Router count is
    ``n_transit_domains * transit_nodes_per_domain * (1 + stubs_per_transit_node * stub_domain_size)``.
    """

    n_transit_domains: int = 2
    transit_nodes_per_domain: int = 4
    stubs_per_transit_node: int = 4
    stub_domain_size: int = 8
    #: Paper §4.1 delay classes (milliseconds).
    intra_transit_delay: float = 100.0
    stub_transit_delay: float = 20.0
    intra_stub_delay: float = 5.0
    #: Probability of each extra (non-spanning-tree) edge inside a
    #: transit domain / stub domain.  Higher values shrink domain
    #: diameter.
    transit_edge_prob: float = 0.5
    stub_edge_prob: float = 0.42
    #: GT-ITM's optional redundancy edges: probability that a stub
    #: domain gets a second uplink to a random transit router, and that
    #: it gets a direct edge to another stub domain.  Either breaks the
    #: single-uplink property the exact latency model needs, so
    #: :func:`repro.topology.latency.latency_model_for` falls back to
    #: the APSP model for such instances.
    extra_uplink_prob: float = 0.0
    stub_stub_edge_prob: float = 0.0

    def __post_init__(self) -> None:
        require(self.n_transit_domains >= 1, "need at least one transit domain")
        require(self.transit_nodes_per_domain >= 1, "need >= 1 transit node per domain")
        require(self.stubs_per_transit_node >= 1, "need >= 1 stub per transit node")
        require(self.stub_domain_size >= 1, "stub domains need >= 1 router")
        for name in ("intra_transit_delay", "stub_transit_delay", "intra_stub_delay"):
            require_positive(getattr(self, name), name=name)
        require(0.0 <= self.transit_edge_prob <= 1.0, "transit_edge_prob in [0,1]")
        require(0.0 <= self.stub_edge_prob <= 1.0, "stub_edge_prob in [0,1]")
        require(0.0 <= self.extra_uplink_prob <= 1.0, "extra_uplink_prob in [0,1]")
        require(0.0 <= self.stub_stub_edge_prob <= 1.0, "stub_stub_edge_prob in [0,1]")

    @property
    def has_shortcuts(self) -> bool:
        """Whether redundancy edges may exist (exact model invalid)."""
        return self.extra_uplink_prob > 0.0 or self.stub_stub_edge_prob > 0.0

    @property
    def n_transit_routers(self) -> int:
        """Total transit routers across all domains."""
        return self.n_transit_domains * self.transit_nodes_per_domain

    @property
    def n_stub_domains(self) -> int:
        """Total stub domains."""
        return self.n_transit_routers * self.stubs_per_transit_node

    @property
    def n_routers(self) -> int:
        """Total router count the parameters will produce."""
        return self.n_transit_routers + self.n_stub_domains * self.stub_domain_size

    @classmethod
    def for_size(cls, n_routers: int, **overrides: object) -> "TransitStubParams":
        """Pick parameters that approximate ``n_routers`` total routers.

        Mirrors how the paper sized its emulated networks: a small
        transit tier that grows in steps with network size while stub
        domains absorb the remainder.  (The paper's own §4.2 notes that
        differing transit/stub configurations between the 6000- and
        7000-node networks produce a small latency non-monotonicity — an
        artifact this stepwise sizing reproduces.)  Stub domains are
        kept sparse (bounded expected extra degree) so intra-stub
        distances stay in the low tens of milliseconds and the paper's
        binning levels ``[0,20] / (20,100) / [100,∞)`` all occur.
        """
        require(n_routers >= 16, f"transit-stub networks need >= 16 routers, got {n_routers}")
        if n_routers < 3000:
            default_domains = 2
        elif n_routers < 7000:
            default_domains = 3
        else:
            default_domains = 4
        n_domains = int(overrides.pop("n_transit_domains", default_domains))
        per_domain = int(overrides.pop("transit_nodes_per_domain", 2))
        stubs_per = int(overrides.pop("stubs_per_transit_node", 8))
        n_transit = n_domains * per_domain
        stub_size = max(2, round((n_routers / n_transit - 1) / stubs_per))
        stub_size = int(overrides.pop("stub_domain_size", stub_size))
        # Sparse stubs: ~1.5 extra edges per router keeps stub diameters
        # large enough that intra-stub distances (multiples of 5 ms)
        # spread across the deeper binning boundaries, so hierarchy
        # depths beyond 2 still find structure to exploit (§4.5).
        stub_edge_prob = float(
            overrides.pop("stub_edge_prob", min(0.5, 1.5 / max(stub_size, 1)))
        )
        return cls(
            n_transit_domains=n_domains,
            transit_nodes_per_domain=per_domain,
            stubs_per_transit_node=stubs_per,
            stub_domain_size=stub_size,
            stub_edge_prob=stub_edge_prob,
            **overrides,  # type: ignore[arg-type]
        )


@dataclass
class TransitStubTopology(Topology):
    """A :class:`Topology` annotated with its transit-stub structure.

    Extra attributes
    ----------------
    stub_domain_of:
        ``(n_routers,)`` int32; stub-domain id of each router, ``-1``
        for transit routers.
    border_router_of_domain:
        ``(n_stub_domains,)`` router id of each stub domain's border
        router (the one holding the 20 ms uplink).
    gateway_of_domain:
        ``(n_stub_domains,)`` transit-router id each stub attaches to.
    local_index:
        ``(n_routers,)`` position of each router inside its own stub
        domain (0 for transit routers); used to index per-domain APSP
        blocks.
    """

    stub_domain_of: np.ndarray = field(kw_only=True, default=None)  # type: ignore[assignment]
    border_router_of_domain: np.ndarray = field(kw_only=True, default=None)  # type: ignore[assignment]
    gateway_of_domain: np.ndarray = field(kw_only=True, default=None)  # type: ignore[assignment]
    local_index: np.ndarray = field(kw_only=True, default=None)  # type: ignore[assignment]
    params: TransitStubParams = field(kw_only=True, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        require(self.stub_domain_of is not None, "stub_domain_of is required")
        self.stub_domain_of = np.asarray(self.stub_domain_of, dtype=np.int32)
        self.border_router_of_domain = np.asarray(self.border_router_of_domain, dtype=np.int64)
        self.gateway_of_domain = np.asarray(self.gateway_of_domain, dtype=np.int64)
        self.local_index = np.asarray(self.local_index, dtype=np.int64)

    @property
    def n_stub_domains(self) -> int:
        """Number of stub domains."""
        return len(self.border_router_of_domain)

    def routers_of_domain(self, domain: int) -> np.ndarray:
        """Router ids belonging to stub domain ``domain``."""
        return np.flatnonzero(self.stub_domain_of == domain)


def _connected_random_graph(
    n: int, extra_edge_prob: float, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Edges of a connected random graph on ``0..n-1``.

    A random recursive tree guarantees connectivity; every other pair is
    added independently with probability ``extra_edge_prob``.  Local ids.
    """
    if n == 1:
        return []
    edges: list[tuple[int, int]] = []
    order = rng.permutation(n)
    for i in range(1, n):
        parent = order[int(rng.integers(0, i))]
        edges.append((int(order[i]), int(parent)))
    present = {(min(a, b), max(a, b)) for a, b in edges}
    if extra_edge_prob > 0.0 and n > 2:
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(len(iu)) < extra_edge_prob
        for a, b in zip(iu[mask], ju[mask]):
            pair = (int(a), int(b))
            if pair not in present:
                present.add(pair)
                edges.append(pair)
    return edges


def generate_transit_stub(
    params: TransitStubParams | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> TransitStubTopology:
    """Generate a Transit-Stub internetwork.

    Router ids are laid out transit-first: routers
    ``0 .. n_transit_routers-1`` are the core (grouped by domain), then
    each stub domain occupies a contiguous block.

    Examples
    --------
    >>> topo = generate_transit_stub(TransitStubParams(), seed=1)
    >>> topo.is_connected()
    True
    """
    params = params or TransitStubParams()
    rng = make_rng(seed)

    edges: list[tuple[int, int]] = []
    delays: list[float] = []
    n_transit = params.n_transit_routers
    n_domains = params.n_transit_domains
    per_domain = params.transit_nodes_per_domain

    # --- transit core -------------------------------------------------
    for d in range(n_domains):
        base = d * per_domain
        for a, b in _connected_random_graph(per_domain, params.transit_edge_prob, rng):
            edges.append((base + a, base + b))
            delays.append(params.intra_transit_delay)
    # Connect transit domains with a random tree over domains; the
    # endpoints of each inter-domain link are random routers of the two
    # domains (GT-ITM's top-level connectivity, delay class = transit).
    for d in range(1, n_domains):
        other = int(rng.integers(0, d))
        u = d * per_domain + int(rng.integers(0, per_domain))
        v = other * per_domain + int(rng.integers(0, per_domain))
        edges.append((u, v))
        delays.append(params.intra_transit_delay)

    # --- stub domains ---------------------------------------------------
    n_stubs = params.n_stub_domains
    stub_size = params.stub_domain_size
    n_routers = params.n_routers
    stub_domain_of = np.full(n_routers, -1, dtype=np.int32)
    local_index = np.zeros(n_routers, dtype=np.int64)
    border_router_of_domain = np.zeros(n_stubs, dtype=np.int64)
    gateway_of_domain = np.zeros(n_stubs, dtype=np.int64)

    domain_id = 0
    next_router = n_transit
    for transit_router in range(n_transit):
        for _ in range(params.stubs_per_transit_node):
            base = next_router
            next_router += stub_size
            stub_domain_of[base : base + stub_size] = domain_id
            local_index[base : base + stub_size] = np.arange(stub_size)
            for a, b in _connected_random_graph(stub_size, params.stub_edge_prob, rng):
                edges.append((base + a, base + b))
                delays.append(params.intra_stub_delay)
            border_local = int(rng.integers(0, stub_size))
            border = base + border_local
            edges.append((border, transit_router))
            delays.append(params.stub_transit_delay)
            border_router_of_domain[domain_id] = border
            gateway_of_domain[domain_id] = transit_router
            domain_id += 1

    # Optional GT-ITM redundancy edges (invalidate the exact model).
    if params.extra_uplink_prob > 0.0:
        for dom in range(n_stubs):
            if rng.random() < params.extra_uplink_prob:
                members = np.flatnonzero(stub_domain_of == dom)
                src = int(members[int(rng.integers(0, len(members)))])
                dst = int(rng.integers(0, n_transit))
                edges.append((src, dst))
                delays.append(params.stub_transit_delay)
    if params.stub_stub_edge_prob > 0.0 and n_stubs > 1:
        for dom in range(n_stubs):
            if rng.random() < params.stub_stub_edge_prob:
                other = int(rng.integers(0, n_stubs - 1))
                other = other + 1 if other >= dom else other
                a = np.flatnonzero(stub_domain_of == dom)
                b = np.flatnonzero(stub_domain_of == other)
                edges.append(
                    (
                        int(a[int(rng.integers(0, len(a)))]),
                        int(b[int(rng.integers(0, len(b)))]),
                    )
                )
                delays.append(params.stub_transit_delay)

    kind = np.full(n_routers, ROUTER_STUB, dtype=np.uint8)
    kind[:n_transit] = ROUTER_TRANSIT

    topo = TransitStubTopology(
        n_routers=n_routers,
        edges=np.asarray(edges, dtype=np.int64),
        delays=np.asarray(delays, dtype=np.float64),
        kind=kind,
        name="transit-stub",
        meta={
            "n_transit_domains": n_domains,
            "transit_nodes_per_domain": per_domain,
            "stubs_per_transit_node": params.stubs_per_transit_node,
            "stub_domain_size": stub_size,
        },
        stub_domain_of=stub_domain_of,
        border_router_of_domain=border_router_of_domain,
        gateway_of_domain=gateway_of_domain,
        local_index=local_index,
        params=params,
    )
    return topo
