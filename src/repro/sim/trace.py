"""Retired shim — message tracing lives in :mod:`repro.metrics.messages`.

The tracer moved to the unified observability subsystem two releases
ago; every in-repo importer now uses ``repro.metrics`` directly.  This
stub is the last release of grace for external code: importing it emits
one :class:`DeprecationWarning` and the moved names resolve lazily (no
eager ``repro.metrics`` import).  The module is deleted next release.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["TracedMessage", "MessageTracer"]

warnings.warn(
    "repro.sim.trace is retired; import MessageTracer/TracedMessage from "
    "repro.metrics.messages — this stub disappears in the next release",
    DeprecationWarning,
    stacklevel=2,
)


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro.metrics import messages

        return getattr(messages, name)
    raise AttributeError(f"module 'repro.sim.trace' has no attribute {name!r}")
