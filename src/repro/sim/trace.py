"""Deprecated shim — message tracing moved to :mod:`repro.metrics.messages`.

The tracer is now part of the unified observability subsystem
(:mod:`repro.metrics`), where it can feed the same
:class:`~repro.metrics.registry.MetricsRegistry` as routing spans and
simulator counters.  Import :class:`MessageTracer` /
:class:`TracedMessage` from ``repro.metrics`` (or
``repro.metrics.messages``) instead; this module re-exports them
unchanged and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.metrics.messages import MessageTracer, TracedMessage

__all__ = ["TracedMessage", "MessageTracer"]

warnings.warn(
    "repro.sim.trace is deprecated; import MessageTracer from repro.metrics",
    DeprecationWarning,
    stacklevel=2,
)
