"""Base class for protocol nodes running on the event engine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Message, SimNetwork

__all__ = ["SimNode"]


class SimNode(ABC):
    """One peer's protocol state machine.

    Subclasses implement :meth:`handle_message`; helpers cover the
    common send/reply/timer patterns.  ``alive`` gates delivery: a
    failed node silently drops everything, like a crashed host.
    """

    def __init__(self, peer: int, sim: Simulator, network: SimNetwork) -> None:
        self.peer = peer
        self.sim = sim
        self.network = network
        self.alive = True
        self._timers: list[EventHandle] = []
        network.register(self)

    # ------------------------------------------------------------------
    @abstractmethod
    def handle_message(self, message: Message) -> None:
        """React to a delivered message."""

    # ------------------------------------------------------------------
    def send(self, dst: int, kind: str, *, token: int = 0, **payload: Any) -> None:
        """Send a message to peer ``dst``."""
        self.network.send(self.peer, dst, Message(kind=kind, sender=self.peer, payload=payload, token=token))

    def reply(self, request: Message, kind: str, **payload: Any) -> None:
        """Answer ``request``'s sender, echoing its correlation token."""
        self.send(request.sender, kind, token=request.token, **payload)

    def after(self, delay_ms: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a local timer; cancelled automatically on failure."""
        handle = self.sim.schedule(delay_ms, self._guarded, callback, args)
        self._timers.append(handle)
        if len(self._timers) > 64:  # drop spent handles
            self._timers = [t for t in self._timers if t.alive]
        return handle

    def _guarded(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        if self.alive:
            callback(*args)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this node: timers stop, future messages are dropped."""
        self.alive = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Bring a failed node back (protocol must re-join explicitly)."""
        self.alive = True
