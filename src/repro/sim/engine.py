"""A small, fast discrete-event simulation engine.

Design: a single binary heap of ``(time, seq, callback)`` entries.  The
monotonically increasing sequence number breaks ties deterministically
(events scheduled earlier run earlier at equal timestamps) and keeps the
heap comparison away from unorderable callback objects.  Cancellation is
lazy: :meth:`EventHandle.cancel` marks the entry dead and the main loop
skips it when popped — O(1) cancel, no heap surgery.

The engine is deliberately synchronous and single-threaded: given the
same schedule of callbacks it produces the same execution order on every
run, which the reproducibility rule (``repro.util.rng``) depends on.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.registry import MetricsRegistry

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "_alive")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the event is still pending."""
        return self._alive

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._alive = False


class Simulator:
    """Event-driven virtual clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> (fired, sim.now)
    (['b', 'a'], 5.0)
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, EventHandle, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = 0
        self.events_processed = 0
        # Optional unified-observability registry (repro.metrics): when
        # attached, each processed event increments a counter and the
        # queue depth / clock land in gauges.  None by default.
        self.metrics: "MetricsRegistry | None" = None

    def attach_metrics(self, registry: "MetricsRegistry") -> "MetricsRegistry":
        """Mirror event accounting into ``registry`` (returns it)."""
        self.metrics = registry
        return registry

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` time units.

        Returns a handle that can cancel the event before it fires.
        """
        require(delay >= 0, f"delay must be >= 0, got {delay}")
        self._seq += 1
        handle = EventHandle(self.now + delay, self._seq)
        heapq.heappush(self._heap, (handle.time, handle.seq, handle, callback, args))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        require(time >= self.now, f"cannot schedule in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, *args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one pending event; False if the queue is empty."""
        while self._heap:
            time, _seq, handle, callback, args = heapq.heappop(self._heap)
            if not handle.alive:
                continue
            handle._alive = False
            self.now = time
            callback(*args)
            self.events_processed += 1
            if self.metrics is not None:
                self.metrics.inc("sim.events_processed")
                self.metrics.set_gauge("sim.queue_depth", len(self._heap))
                self.metrics.set_gauge("sim.clock_ms", self.now)
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this timestamp (pending later
            events stay queued; the clock advances to ``until``).
        max_events:
            Safety valve for protocols that schedule periodic timers
            forever; processes at most this many events, then raises
            RuntimeError if more remain so tests fail loudly instead of
            spinning.
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                # Budget exhausted: only complain if a live event (one
                # that would actually run, within `until`) is pending.
                while self._heap and not self._heap[0][2].alive:
                    heapq.heappop(self._heap)
                if not self._heap:
                    return
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    return
                raise RuntimeError(f"exceeded max_events={max_events}")
            if not self.step():
                return
            processed += 1

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)
