"""Message-level network on top of the event engine.

Messages between peers are delivered after the latency-model delay for
that pair (converted from milliseconds to the simulator's time unit,
also milliseconds).  Failed/departed nodes silently drop incoming
messages — exactly the failure mode DHT maintenance protocols must
tolerate — and the network counts every message and its delay so
experiments can report protocol overheads (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.topology.base import LatencyModel
from repro.util.rng import make_rng
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.registry import MetricsRegistry
    from repro.sim.engine import Simulator
    from repro.sim.node import SimNode

__all__ = ["Message", "SimNetwork"]


@dataclass
class Message:
    """A protocol message in flight.

    ``kind`` routes the message to a handler; ``payload`` is free-form;
    ``token`` correlates requests with responses.
    """

    kind: str
    sender: int
    payload: dict[str, Any] = field(default_factory=dict)
    token: int = 0


class SimNetwork:
    """Registry of simulated peers plus latency-delayed delivery.

    ``loss_rate`` injects independent per-message loss (failure-injection
    testing: DHT maintenance must converge despite lost messages); losses
    are counted in :attr:`messages_lost`.
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: LatencyModel,
        *,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        require(0.0 <= loss_rate < 1.0, "loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        # loss_rate is deliberately a plain mutable attribute: fault
        # injectors flip it mid-run (loss bursts), so the RNG must exist
        # up front — via the repo-wide determinism contract.
        self.loss_rate = loss_rate
        self._loss_rng = make_rng(loss_seed)
        # Optional reachability hook (network partitions): messages with
        # drop_filter(src, dst) == True are undeliverable and counted lost.
        self.drop_filter: Callable[[int, int], bool] | None = None
        self._nodes: dict[int, "SimNode"] = {}
        # Accounting (per message kind) for the §3.4 overhead analysis.
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_lost = 0
        self.total_delay_ms = 0.0
        self.sent_by_kind: dict[str, int] = {}
        # Optional unified-observability registry (repro.metrics): when
        # attached, every count above is mirrored into named counters so
        # protocol traffic lands next to routing spans.  None by default
        # — the unattached hot path pays one attribute check.
        self.metrics: "MetricsRegistry | None" = None

    def attach_metrics(self, registry: "MetricsRegistry") -> "MetricsRegistry":
        """Mirror message accounting into ``registry`` (returns it)."""
        self.metrics = registry
        return registry

    # ------------------------------------------------------------------
    def register(self, node: "SimNode") -> None:
        """Add a peer to the network (its ``peer`` must be unique)."""
        require(node.peer not in self._nodes, f"peer {node.peer} already registered")
        self._nodes[node.peer] = node

    def unregister(self, peer: int) -> None:
        """Remove a peer entirely (it stops receiving messages)."""
        self._nodes.pop(peer, None)

    def node(self, peer: int) -> "SimNode":
        """Look up a registered peer."""
        return self._nodes[peer]

    def peers(self) -> list[int]:
        """All registered peer indices."""
        return sorted(self._nodes)

    def __contains__(self, peer: int) -> bool:
        return peer in self._nodes

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after the link delay.

        Local delivery (``src == dst``) is immediate-but-asynchronous
        (zero delay, still via the event queue) so handler re-entrancy
        never occurs.  Messages to unregistered or failed peers are
        counted and dropped at delivery time — the sender cannot know.
        """
        self.messages_sent += 1
        self.sent_by_kind[message.kind] = self.sent_by_kind.get(message.kind, 0) + 1
        m = self.metrics
        if m is not None:
            m.inc("sim.messages_sent")
            m.inc(f"sim.sent.{message.kind}")
        if src != dst:
            if self.drop_filter is not None and self.drop_filter(src, dst):
                self.messages_lost += 1
                if m is not None:
                    m.inc("sim.messages_lost")
                return
            if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
                self.messages_lost += 1
                if m is not None:
                    m.inc("sim.messages_lost")
                return
        # Lost messages never cross a link, so they contribute no delay.
        delay = 0.0 if src == dst else float(self.latency.pair(src, dst))
        self.total_delay_ms += delay
        if m is not None:
            m.observe("sim.link_delay_ms", delay)
        self.sim.schedule(delay, self._deliver, dst, message)

    def _deliver(self, dst: int, message: Message) -> None:
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.inc("sim.messages_dropped")
            return
        node.handle_message(message)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Message-count / delay summary for overhead reporting.

        ``mean_delay_ms`` averages over messages that actually crossed a
        link (lost messages contribute neither delay nor weight).
        """
        delivered = self.messages_sent - self.messages_lost
        return {
            "messages_sent": float(self.messages_sent),
            "messages_dropped": float(self.messages_dropped),
            "messages_lost": float(self.messages_lost),
            "total_delay_ms": self.total_delay_ms,
            "mean_delay_ms": self.total_delay_ms / delivered if delivered else 0.0,
            "sent_by_kind": dict(self.sent_by_kind),
        }
