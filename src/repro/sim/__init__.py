"""Discrete-event simulation substrate for the protocol stack.

The trace-driven experiments never need this package — they walk
routing tables directly.  The *protocol* implementations (Chord join /
stabilize, the §3.3 HIERAS join, churn experiments) run on this engine:
an event heap (:mod:`repro.sim.engine`), a message-delivery network
whose delays come from a latency model (:mod:`repro.sim.network`), and
a small node/process base class (:mod:`repro.sim.node`).
"""

from repro.metrics.messages import MessageTracer, TracedMessage
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import Message, SimNetwork
from repro.sim.node import SimNode

__all__ = [
    "Simulator",
    "EventHandle",
    "SimNetwork",
    "Message",
    "SimNode",
    "MessageTracer",
    "TracedMessage",
]
