"""Tests for the sweep tool and the DES message tracer."""

import csv

import numpy as np
import pytest

from repro.dht.base import ZeroLatency
from repro.dht.chord_protocol import GLOBAL_RING, ChordProtocolNode
from repro.experiments.sweep import SweepSpec, run_sweep, write_csv
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.metrics.messages import MessageTracer
from repro.util.ids import IdSpace


class TestSweepSpec:
    def test_cell_count(self):
        spec = SweepSpec(models=("ts", "brite"), sizes=(100, 200), seeds=(1, 2, 3))
        assert spec.n_cells == 12

    def test_configs_enumeration(self):
        spec = SweepSpec(sizes=(100, 200), landmarks=(2, 4))
        configs = list(spec.configs())
        assert len(configs) == 4
        assert {c.n_peers for c in configs} == {100, 200}

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(models=())
        with pytest.raises(ValueError):
            SweepSpec(n_requests=0)


class TestRunSweep:
    def test_rows_and_csv(self, tmp_path):
        spec = SweepSpec(sizes=(200,), landmarks=(4,), seeds=(1,), n_requests=500)
        notes = []
        rows = run_sweep(spec, progress=notes.append)
        assert len(rows) == 1
        assert rows[0]["model"] == "ts"
        assert 0 < rows[0]["latency_ratio_pct"] < 120
        assert notes
        path = tmp_path / "out.csv"
        assert write_csv(rows, path) == 1
        with path.open() as fh:
            parsed = list(csv.DictReader(fh))
        assert parsed[0]["n_peers"] == "200"

    def test_invalid_cells_skipped(self):
        # Inet below its floor: skipped, not fatal.
        spec = SweepSpec(models=("inet",), sizes=(200,), n_requests=100)
        notes = []
        rows = run_sweep(spec, progress=notes.append)
        assert rows == []
        assert any("skip" in n for n in notes)

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")


def build_pair():
    space = IdSpace(12)
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency())
    a = ChordProtocolNode(0, 100, space, sim, net)
    b = ChordProtocolNode(1, 2000, space, sim, net)
    return sim, net, a, b


class TestMessageTracer:
    def test_records_sends(self):
        sim, net, a, b = build_pair()
        tracer = MessageTracer(net)
        tracer.start()
        a.send(1, "hello", x=1)
        sim.run()
        assert tracer.count() == 1
        assert tracer.events[0].kind == "hello"
        assert tracer.events[0].src == 0 and tracer.events[0].dst == 1

    def test_stop_restores(self):
        sim, net, a, b = build_pair()
        tracer = MessageTracer(net)
        tracer.start()
        tracer.stop()
        a.send(1, "quiet")
        sim.run()
        assert tracer.count() == 0
        assert net.messages_sent == 1  # network still delivered

    def test_context_manager(self):
        sim, net, a, b = build_pair()
        with MessageTracer(net) as tracer:
            a.send(1, "ping1")
            a.send(1, "ping2")
            sim.run()
            assert tracer.count() == 2
        a.send(1, "after")
        sim.run()
        assert tracer.count() == 2

    def test_aggregations(self):
        sim, net, a, b = build_pair()
        with MessageTracer(net) as tracer:
            a.send(1, "x")
            a.send(1, "x")
            b.send(0, "y")
            sim.run()
            assert tracer.by_kind() == {"x": 2, "y": 1}
            assert tracer.by_peer() == {0: 2, 1: 1}
            assert tracer.count(kind="x") == 2

    def test_between_and_reset(self):
        sim, net, a, b = build_pair()
        tracer = MessageTracer(net)
        tracer.start()
        sim.schedule(10.0, a.send, 1, "late")
        a.send(1, "early")
        sim.run()
        assert len(tracer.between(0.0, 5.0)) == 1
        assert len(tracer.between(5.0, 20.0)) == 1
        tracer.reset()
        assert tracer.count() == 0

    def test_join_cost_measurement(self):
        """A realistic use: count messages one protocol join costs."""
        space = IdSpace(12)
        rng = np.random.default_rng(0)
        ids = space.sample_unique_ids(9, rng)
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency())
        nodes = [ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(9)]
        nodes[0].create_ring(GLOBAL_RING)
        for p in range(1, 8):
            sim.schedule_at(p * 200.0, nodes[p].join_ring, GLOBAL_RING, 0)
        sim.run(until=20_000, max_events=2_000_000)
        with MessageTracer(net) as tracer:
            nodes[8].join_ring(GLOBAL_RING, 0)
            sim.run(until=sim.now + 3_000, max_events=2_000_000)
            join_msgs = tracer.count()
        assert join_msgs > 0
        # One join costs far less than the whole network's history.
        assert join_msgs < net.messages_sent / 4

    def test_tracer_feeds_registry(self):
        """Optional registry kwarg mirrors traffic into named metrics."""
        from repro.metrics import MetricsRegistry

        sim, net, a, b = build_pair()
        reg = MetricsRegistry()
        with MessageTracer(net, registry=reg) as tracer:
            a.send(1, "x")
            a.send(1, "x")
            b.send(0, "y")
            sim.run()
        assert tracer.count() == 3
        assert reg.counter("trace.messages").value == 3
        assert reg.counter("trace.sent.x").value == 2
        assert reg.counter("trace.sent.y").value == 1
        assert reg.histogram("trace.delay_ms").count == 3

    def test_retired_shim_is_gone(self):
        """repro.sim.trace's grace period is over: the module is deleted.

        The tracer lives in repro.metrics.messages; importing the old
        path must fail outright rather than resolve to a stale stub.
        """
        import importlib
        import sys

        sys.modules.pop("repro.sim.trace", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.sim.trace")
