"""Stateful property tests: routing stays correct under arbitrary churn.

Hypothesis drives random sequences of joins, leaves and lookups against
the static stacks, checking after every step that ownership and routing
agree with a simple reference model (a sorted list of live ids).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.util.ids import IdSpace

BITS = 12
SPACE = IdSpace(BITS)
RING_NAMES = ["0", "1", "2"]


class ChordChurnMachine(RuleBasedStateMachine):
    """Random joins/leaves/lookups against ChordNetwork."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(99)
        initial = SPACE.sample_unique_ids(8, rng)
        self.net = ChordNetwork(SPACE, initial)
        self.live = {p: int(initial[p]) for p in range(8)}
        self.used_ids = set(int(i) for i in initial)

    @rule(raw=st.integers(min_value=0, max_value=SPACE.size - 1))
    def join(self, raw):
        if raw in self.used_ids:
            return
        peer = self.net.add_peer(raw)
        self.live[peer] = raw
        self.used_ids.add(raw)

    @precondition(lambda self: len(self.live) > 2)
    @rule(idx=st.integers(min_value=0, max_value=10_000))
    def leave(self, idx):
        peer = sorted(self.live)[idx % len(self.live)]
        self.net.remove_peer(peer)
        self.used_ids.discard(self.live.pop(peer))

    @rule(
        key=st.integers(min_value=0, max_value=SPACE.size - 1),
        src=st.integers(min_value=0, max_value=10_000),
    )
    def lookup(self, key, src):
        source = sorted(self.live)[src % len(self.live)]
        result = self.net.route(source, key)
        assert result.owner == self._reference_owner(key)
        assert all(p in self.live for p in result.path)

    def _reference_owner(self, key):
        ids = sorted((nid, p) for p, nid in self.live.items())
        for nid, p in ids:
            if nid >= key:
                return p
        return ids[0][1]

    @invariant()
    def membership_consistent(self):
        assert self.net.n_peers == len(self.live)


class HierasChurnMachine(RuleBasedStateMachine):
    """Random joins/leaves/lookups against HierasNetwork."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(7)
        initial = SPACE.sample_unique_ids(9, rng)
        distances = rng.uniform(0, 300, size=(9, 3))
        orders = BinningScheme.default_for_depth(2).orders(distances)
        self.net = HierasNetwork(SPACE, initial, landmark_orders=orders, depth=2)
        self.live = {p: int(initial[p]) for p in range(9)}
        self.used_ids = set(int(i) for i in initial)

    @rule(
        raw=st.integers(min_value=0, max_value=SPACE.size - 1),
        ring=st.sampled_from(RING_NAMES),
    )
    def join(self, raw, ring):
        if raw in self.used_ids:
            return
        peer = self.net.add_peer(raw, [ring])
        self.live[peer] = raw
        self.used_ids.add(raw)

    @precondition(lambda self: len(self.live) > 2)
    @rule(idx=st.integers(min_value=0, max_value=10_000))
    def leave(self, idx):
        peer = sorted(self.live)[idx % len(self.live)]
        self.net.remove_peer(peer)
        self.used_ids.discard(self.live.pop(peer))

    @rule(
        key=st.integers(min_value=0, max_value=SPACE.size - 1),
        src=st.integers(min_value=0, max_value=10_000),
    )
    def lookup(self, key, src):
        source = sorted(self.live)[src % len(self.live)]
        result = self.net.route(source, key)
        ids = sorted((nid, p) for p, nid in self.live.items())
        expected = next((p for nid, p in ids if nid >= key), ids[0][1])
        assert result.owner == expected
        assert sum(result.hops_per_layer) == result.hops

    @invariant()
    def rings_partition_members(self):
        members: set[int] = set()
        for ring in self.net.rings_at_layer(2).values():
            peers = set(int(p) for p in ring.peers)
            assert not (members & peers)
            members |= peers
        assert members == set(self.live)


TestChordChurn = ChordChurnMachine.TestCase
TestChordChurn.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)
TestHierasChurn = HierasChurnMachine.TestCase
TestHierasChurn.settings = settings(max_examples=15, stateful_step_count=25, deadline=None)
