"""Tests for the message-level Chord protocol."""

import numpy as np
import pytest

from repro.dht.base import ZeroLatency
from repro.dht.chord_protocol import GLOBAL_RING, ChordProtocolNode, ProtocolConfig
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.util.ids import IdSpace


def build_converged(n=24, seed=0, bits=16, join_gap_ms=200.0, settle_ms=30000.0):
    space = IdSpace(bits)
    rng = np.random.default_rng(seed)
    ids = space.sample_unique_ids(n, rng)
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency())
    nodes = [ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)]
    nodes[0].create_ring(GLOBAL_RING)
    t = 0.0
    for p in range(1, n):
        t += join_gap_ms
        sim.schedule_at(t, nodes[p].join_ring, GLOBAL_RING, 0)
    sim.run(until=t + settle_ms, max_events=5_000_000)
    return space, ids, sim, net, nodes


def expected_cycle(ids):
    order = np.argsort(ids)
    return {int(order[i]): int(order[(i + 1) % len(ids)]) for i in range(len(ids))}


@pytest.fixture(scope="module")
def converged():
    return build_converged()


class TestConvergence:
    def test_successors_form_sorted_cycle(self, converged):
        space, ids, sim, net, nodes = converged
        cycle = expected_cycle(ids)
        for p, expect in cycle.items():
            assert nodes[p].ring_state().successor[0] == expect

    def test_predecessors_inverse_of_successors(self, converged):
        space, ids, sim, net, nodes = converged
        cycle = expected_cycle(ids)
        inverse = {v: k for k, v in cycle.items()}
        for p in range(len(ids)):
            assert nodes[p].ring_state().predecessor[0] == inverse[p]

    def test_successor_lists_are_consecutive(self, converged):
        space, ids, sim, net, nodes = converged
        cycle = expected_cycle(ids)
        for p in range(len(ids)):
            expected = []
            cur = p
            for _ in range(nodes[p].config.successor_list_len):
                cur = cycle[cur]
                expected.append(cur)
            got = [e[0] for e in nodes[p].ring_state().successor_list]
            assert got == expected[: len(got)]
            assert len(got) >= 1

    def test_fingers_converge_to_true_successors(self, converged):
        space, ids, sim, net, nodes = converged
        sorted_ids = np.sort(ids)

        def owner(k):
            i = np.searchsorted(sorted_ids, k % space.size)
            return int(sorted_ids[i % len(ids)])

        node = nodes[3]
        fingers = node.ring_state().fingers
        checked = 0
        for i, f in enumerate(fingers, start=1):
            if f is None:
                continue
            start = space.finger_start(node.node_id, i)
            assert f[1] == owner(start)
            checked += 1
        assert checked >= space.bits // 2


class TestLookups:
    def test_lookup_owner_correct(self, converged):
        space, ids, sim, net, nodes = converged
        rng = np.random.default_rng(1)
        sorted_ids = np.sort(ids)
        results = []
        keys = rng.integers(0, space.size, 200)
        for k in keys:
            nodes[int(rng.integers(0, len(ids)))].lookup(int(k), results.append)
        sim.run(until=sim.now + 60000, max_events=5_000_000)
        assert len(results) == 200
        for out in results:
            i = np.searchsorted(sorted_ids, out.key)
            assert out.owner_id == int(sorted_ids[i % len(ids)])

    def test_lookup_hops_logarithmic(self, converged):
        space, ids, sim, net, nodes = converged
        rng = np.random.default_rng(2)
        results = []
        for _ in range(200):
            nodes[int(rng.integers(0, len(ids)))].lookup(
                int(rng.integers(0, space.size)), results.append
            )
        sim.run(until=sim.now + 60000, max_events=5_000_000)
        mean = np.mean([r.hops for r in results])
        assert mean < 0.5 * np.log2(len(ids)) + 2.5


class TestFailureRecovery:
    def test_successor_failover(self):
        space, ids, sim, net, nodes = build_converged(n=16, seed=3)
        cycle = expected_cycle(ids)
        victim = cycle[0]  # node 0's successor crashes
        nodes[victim].fail()
        net.unregister(victim)
        sim.run(until=sim.now + 30000, max_events=5_000_000)
        live = [p for p in range(16) if p != victim]
        live_ids = {p: int(ids[p]) for p in live}
        order = sorted(live, key=lambda p: live_ids[p])
        expect = {order[i]: order[(i + 1) % len(order)] for i in range(len(order))}
        for p in live:
            assert nodes[p].ring_state().successor[0] == expect[p]

    def test_multiple_failures(self):
        space, ids, sim, net, nodes = build_converged(n=20, seed=4)
        victims = [2, 9, 15]
        for v in victims:
            nodes[v].fail()
            net.unregister(v)
        sim.run(until=sim.now + 60000, max_events=8_000_000)
        live = [p for p in range(20) if p not in victims]
        order = sorted(live, key=lambda p: int(ids[p]))
        expect = {order[i]: order[(i + 1) % len(order)] for i in range(len(order))}
        for p in live:
            assert nodes[p].ring_state().successor[0] == expect[p]

    def test_graceful_leave_repairs_fast(self):
        space, ids, sim, net, nodes = build_converged(n=12, seed=5)
        cycle = expected_cycle(ids)
        leaver = cycle[1]
        nodes[leaver].leave_ring(GLOBAL_RING)
        nodes[leaver].fail()
        net.unregister(leaver)
        sim.run(until=sim.now + 20000, max_events=4_000_000)
        live = [p for p in range(12) if p != leaver]
        order = sorted(live, key=lambda p: int(ids[p]))
        expect = {order[i]: order[(i + 1) % len(order)] for i in range(len(order))}
        for p in live:
            assert nodes[p].ring_state().successor[0] == expect[p]

    def test_lookups_survive_churn(self):
        space, ids, sim, net, nodes = build_converged(n=20, seed=6)
        for v in (4, 13):
            nodes[v].fail()
            net.unregister(v)
        sim.run(until=sim.now + 40000, max_events=8_000_000)
        live = [p for p in range(20) if p not in (4, 13)]
        live_sorted_ids = np.sort([int(ids[p]) for p in live])
        rng = np.random.default_rng(7)
        results = []
        for _ in range(100):
            nodes[int(rng.choice(live))].lookup(
                int(rng.integers(0, space.size)), results.append
            )
        sim.run(until=sim.now + 60000, max_events=8_000_000)
        assert len(results) == 100
        for out in results:
            i = np.searchsorted(live_sorted_ids, out.key)
            assert out.owner_id == int(live_sorted_ids[i % len(live)])


class TestConfig:
    def test_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            ProtocolConfig(stabilize_interval_ms=0)
        with pytest.raises(ValueError):
            ProtocolConfig(successor_list_len=0)
        with pytest.raises(ValueError):
            ProtocolConfig(request_timeout_ms=-1)


class TestIterativeLookups:
    def test_iterative_owner_correct(self, converged):
        space, ids, sim, net, nodes = converged
        rng = np.random.default_rng(8)
        sorted_ids = np.sort(ids)
        results = []
        keys = rng.integers(0, space.size, 150)
        for k in keys:
            nodes[int(rng.integers(0, len(ids)))].lookup_iterative(int(k), results.append)
        sim.run(until=sim.now + 90_000, max_events=6_000_000)
        assert len(results) == 150
        for out in results:
            i = np.searchsorted(sorted_ids, out.key)
            assert out.owner_id == int(sorted_ids[i % len(ids)])

    def test_iterative_matches_recursive_hops(self, converged):
        """Both modes walk the same finger tables: same hop counts."""
        space, ids, sim, net, nodes = converged
        rng = np.random.default_rng(9)
        rec, it = [], []
        for _ in range(60):
            s = int(rng.integers(0, len(ids)))
            k = int(rng.integers(0, space.size))
            nodes[s].lookup(k, rec.append)
            nodes[s].lookup_iterative(k, it.append)
        sim.run(until=sim.now + 90_000, max_events=6_000_000)
        assert len(rec) == len(it) == 60
        by_key_rec = {(o.key): o.hops for o in rec}
        for o in it:
            assert o.hops == by_key_rec[o.key]

    def test_iterative_origin_drives_traffic(self, converged):
        """In iterative mode every query originates at the source."""
        from repro.metrics.messages import MessageTracer

        space, ids, sim, net, nodes = converged
        with MessageTracer(net) as tracer:
            done = []
            nodes[2].lookup_iterative(12345, done.append)
            sim.run(until=sim.now + 30_000, max_events=4_000_000)
        queries = [e for e in tracer.events if e.kind == "next_hop_query"]
        assert done and all(e.src == 2 for e in queries)
        assert len(queries) >= done[0].hops


class TestSuccessorListShortcut:
    def test_shortcut_finds_predecessor_in_list(self, converged):
        space, ids, sim, net, nodes = converged
        node = nodes[0]
        slist = node.ring_state().successor_list
        assert len(slist) >= 2
        # A key just past the first list entry: its predecessor is that
        # entry, which the shortcut must return.
        target = slist[0]
        key = (target[1] + 1) % space.size
        # Only valid if key is within the covered arc and not owned by us.
        got = node._successor_list_shortcut("global", key)
        assert got == target

    def test_shortcut_none_beyond_list(self, converged):
        space, ids, sim, net, nodes = converged
        node = nodes[0]
        last = node.ring_state().successor_list[-1]
        key = (last[1] + 5) % space.size
        # Beyond the arc the list covers (for a 24-node ring the list of
        # 4 covers well under the full circle).
        if (key - node.node_id) % space.size > (last[1] - node.node_id) % space.size:
            assert node._successor_list_shortcut("global", key) is None

    def test_shortcut_none_for_own_key(self, converged):
        space, ids, sim, net, nodes = converged
        node = nodes[0]
        assert node._successor_list_shortcut("global", node.node_id) is None


class TestRealisticLatencies:
    def test_convergence_with_network_delays(self):
        """Protocol timers must interact correctly with real message
        delays (all other protocol tests use zero latency)."""
        from repro.topology.latency import CoordinateLatencyModel

        space = IdSpace(16)
        rng = np.random.default_rng(17)
        n = 16
        ids = space.sample_unique_ids(n, rng)
        coords = rng.uniform(0, 120, size=(n, 2))  # delays up to ~170ms
        sim = Simulator()
        net = SimNetwork(sim, CoordinateLatencyModel(coords))
        nodes = [ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)]
        nodes[0].create_ring(GLOBAL_RING)
        t = 0.0
        for p in range(1, n):
            t += 600.0
            sim.schedule_at(t, nodes[p].join_ring, GLOBAL_RING, 0)
        sim.run(until=t + 90_000, max_events=8_000_000)
        cycle = expected_cycle(ids)
        for p, expect in cycle.items():
            assert nodes[p].ring_state().successor[0] == expect
        # Lookups complete and take wall-clock time (delays are real).
        results = []
        t0 = sim.now
        nodes[0].lookup(12345, results.append)
        sim.run(until=sim.now + 30_000, max_events=2_000_000)
        assert results
        assert sim.now > t0  # messages consumed virtual time
        sorted_ids = np.sort(ids)
        i = np.searchsorted(sorted_ids, results[0].key)
        assert results[0].owner_id == int(sorted_ids[i % n])
