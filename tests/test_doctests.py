"""Run the documentation examples embedded in module docstrings.

Keeps the docs honest: every ``>>>`` example in these modules must
execute and produce the shown output.
"""

import doctest

import pytest

import repro._facade
import repro.analysis.tables
import repro.core.binning
import repro.sim.engine
import repro.util.ids
import repro.util.intervals

MODULES = [
    repro.util.ids,
    repro.util.intervals,
    repro.sim.engine,
    repro.core.binning,
    repro.analysis.tables,
    repro._facade,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_doctests_actually_exist():
    """Guard against silently passing because nothing was collected."""
    total = sum(doctest.testmod(m).attempted for m in MODULES)
    assert total >= 8
