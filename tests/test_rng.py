"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_none_means_seed_zero(self):
        assert make_rng(None).integers(0, 10**9) == make_rng(0).integers(0, 10**9)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(3, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_reproducible(self):
        x = [g.integers(0, 10**9) for g in spawn_rngs(3, 3)]
        y = [g.integers(0, 10**9) for g in spawn_rngs(3, 3)]
        assert x == y


class TestRngFactory:
    def test_same_label_same_stream(self):
        f = RngFactory(42)
        assert f.get("a").integers(0, 10**9) == f.get("a").integers(0, 10**9)

    def test_labels_independent(self):
        f = RngFactory(42)
        assert f.get("a").integers(0, 10**9) != f.get("b").integers(0, 10**9)

    def test_seed_changes_streams(self):
        a = RngFactory(1).get("x").integers(0, 10**9)
        b = RngFactory(2).get("x").integers(0, 10**9)
        assert a != b

    def test_child_namespacing(self):
        f = RngFactory(42)
        c1 = f.child("exp1").get("x").integers(0, 10**9)
        c2 = f.child("exp2").get("x").integers(0, 10**9)
        assert c1 != c2

    def test_child_deterministic(self):
        a = RngFactory(42).child("e").get("x").integers(0, 10**9)
        b = RngFactory(42).child("e").get("x").integers(0, 10**9)
        assert a == b

    def test_many_streams(self):
        f = RngFactory(9)
        values = [g.integers(0, 10**9) for g in f.many("pool", 4)]
        assert len(set(values)) == 4

    def test_many_reproducible(self):
        f = RngFactory(9)
        a = [g.integers(0, 10**9) for g in f.many("pool", 3)]
        b = [g.integers(0, 10**9) for g in f.many("pool", 3)]
        assert a == b


def test_cross_platform_stability():
    """Pin a few values: seeded streams must never drift across releases
    (every recorded experiment depends on it)."""
    g = make_rng(0)
    assert int(g.integers(0, 2**32)) == 3653403231


def test_validation_helpers():
    from repro.util.validation import require, require_in_range, require_positive, require_type

    require(True, "fine")
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")
    require_positive(1.5)
    with pytest.raises(ValueError):
        require_positive(0)
    require_in_range(5, 0, 10)
    with pytest.raises(ValueError):
        require_in_range(11, 0, 10, name="x")
    require_type("s", str)
    with pytest.raises(TypeError):
        require_type("s", int, name="n")
    with pytest.raises(TypeError):
        require_type(3.5, (int, str))
