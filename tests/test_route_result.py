"""Tests for RouteResult and the DHTNetwork base helpers."""

import numpy as np
import pytest

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.topology.latency import CoordinateLatencyModel


def make_result(path, per_layer=None):
    return RouteResult(
        source=path[0],
        key=1,
        owner=path[-1],
        path=path,
        latency_ms=0.0,
        hops_per_layer=per_layer or [],
    )


class TestRouteResult:
    def test_hops(self):
        assert make_result([1, 2, 3]).hops == 2
        assert make_result([7]).hops == 0

    def test_flat_layer_accessors(self):
        r = make_result([1, 2, 3], per_layer=[2])
        assert r.low_layer_hops == 0
        assert r.top_layer_hops == 2

    def test_hierarchical_layer_accessors(self):
        r = make_result([1, 2, 3, 4, 5], per_layer=[2, 1, 1])
        assert r.low_layer_hops == 3
        assert r.top_layer_hops == 1

    def test_no_layers_defaults_to_total(self):
        r = make_result([1, 2, 3])
        assert r.top_layer_hops == 2
        assert r.low_layer_hops == 0


class TestZeroLatency:
    def test_pairs_and_pair(self):
        z = ZeroLatency()
        assert z.pair(1, 2) == 0.0
        np.testing.assert_array_equal(
            z.pairs(np.asarray([1, 2]), np.asarray([3, 4])), np.zeros(2)
        )

    def test_to_targets_default(self):
        z = ZeroLatency()
        np.testing.assert_array_equal(z.to_targets(0, np.asarray([1, 2, 3])), np.zeros(3))


class _StubNetwork(DHTNetwork):
    @property
    def n_peers(self):
        return 3

    def owner_of(self, key):
        return 0

    def route(self, source, key):
        raise NotImplementedError


class TestRouteLatencyHelper:
    def test_sums_along_path(self):
        coords = np.asarray([[0.0, 0.0], [3.0, 4.0], [3.0, 0.0]])
        model = CoordinateLatencyModel(coords)
        net = _StubNetwork()
        assert net.route_latency(model, [0, 1, 2]) == pytest.approx(5.0 + 4.0)

    def test_short_paths_cost_nothing(self):
        net = _StubNetwork()
        model = ZeroLatency()
        assert net.route_latency(model, [0]) == 0.0
        assert net.route_latency(model, []) == 0.0
