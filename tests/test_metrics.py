"""Tests for the unified observability subsystem (repro.metrics)."""

import json

import numpy as np
import pytest

from repro.dht.base import ZeroLatency
from repro.dht.chord_protocol import ChordProtocolNode
from repro.metrics import (
    NULL_REGISTRY,
    Histogram,
    HopRecord,
    JsonlSink,
    LookupSpan,
    MemorySink,
    MetricsRegistry,
    NullRegistry,
    SpanRecorder,
    SummarySink,
    read_jsonl,
)
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.util.ids import IdSpace


class TestCountersGauges:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.5)
        assert reg.counter("a").value == 5
        assert reg.gauge("g").value == 2.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("a", -1)

    def test_create_on_use(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")


class TestHistogram:
    def test_determinism_same_stream_same_dict(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(50.0, size=2000).tolist() + [0.0, 0.0, 1e-4, 9e6]
        a, b = Histogram("h"), Histogram("h")
        a.record_many(values)
        b.record_many(values)
        assert a.to_dict() == b.to_dict()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_order_independence(self):
        values = [1.0, 5.0, 25.0, 125.0, 0.0, 3.3]
        a, b = Histogram(), Histogram()
        a.record_many(values)
        b.record_many(reversed(values))
        assert a.to_dict() == b.to_dict()

    def test_merge_associative_and_commutative(self):
        rng = np.random.default_rng(9)
        streams = [rng.exponential(s + 1, size=300) for s in range(3)]
        hs = []
        for stream in streams:
            h = Histogram("m")
            h.record_many(stream)
            hs.append(h)
        a, b, c = hs
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(10.0, size=500)
        whole = Histogram()
        whole.record_many(values)
        h1, h2 = Histogram(), Histogram()
        h1.record_many(values[:200])
        h2.record_many(values[200:])
        merged, single = h1.merge(h2).to_dict(), whole.to_dict()
        # Float totals differ in the last bits across summation orders;
        # counts, buckets and extrema must be identical.
        assert merged.pop("total") == pytest.approx(single.pop("total"))
        assert merged == single

    def test_merge_base_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(base=1.1).merge(Histogram(base=1.3))

    def test_quantiles_clamped_and_monotone(self):
        h = Histogram()
        h.record_many([2.0, 4.0, 8.0, 16.0, 100.0])
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)
        assert h.quantile(0.0) >= 2.0
        assert h.quantile(1.0) <= 100.0

    def test_mean_exact(self):
        h = Histogram()
        h.record_many([1.0, 2.0, 3.0])
        assert h.mean == pytest.approx(2.0)

    def test_zero_and_negative(self):
        h = Histogram()
        h.record(0.0)
        assert h.zero_count == 1 and h.count == 1
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.record(-1.0)

    def test_serialization_round_trip(self):
        h = Histogram(base=1.2)
        h.record_many([0.0, 1.5, 77.0, 3200.0])
        assert Histogram.from_dict(h.to_dict()).to_dict() == h.to_dict()

    def test_empty_round_trip(self):
        h = Histogram()
        d = h.to_dict()
        assert d["min"] is None and d["max"] is None
        assert Histogram.from_dict(d).to_dict() == d


def _make_span(network="hieras"):
    return LookupSpan(
        network=network,
        source=3,
        key=1234,
        owner=9,
        hops=[
            HopRecord(index=0, src=3, dst=5, layer=2, ring="0121", latency_ms=4.0),
            HopRecord(index=1, src=5, dst=7, layer=2, ring="0121", latency_ms=6.5),
            HopRecord(index=2, src=7, dst=9, layer=1, ring="global", latency_ms=80.0),
        ],
    )


class TestSpans:
    def test_derived_properties(self):
        span = _make_span()
        assert span.n_hops == 3
        assert span.latency_ms == pytest.approx(90.5)
        assert span.layers == [2, 2, 1]
        assert span.low_layer_hops == 2
        assert span.low_layer_hop_share == pytest.approx(2 / 3)

    def test_dict_round_trip(self):
        span = _make_span()
        assert LookupSpan.from_dict(span.to_dict()).to_dict() == span.to_dict()

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "lookups.spans.jsonl"
        sink = JsonlSink(path)
        recorder = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
        spans = [_make_span(), _make_span("chord")]
        for s in spans:
            recorder.record(s)
        recorder.close()
        loaded = read_jsonl(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_jsonl_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlSink(path).close()
        assert not path.exists()

    def test_recorder_registry_names(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(registry=reg)
        rec.record(_make_span())
        assert reg.counter("hieras.lookups").value == 1
        assert reg.counter("hieras.total_hops").value == 3
        assert reg.counter("hieras.hops.layer2").value == 2
        assert reg.counter("hieras.hops.layer1").value == 1
        assert reg.counter("hieras.low_layer_hops").value == 2
        assert reg.histogram("hieras.latency_ms").count == 1
        assert rec.low_layer_hop_share("hieras") == pytest.approx(2 / 3)

    def test_summary_sink(self):
        sink = SummarySink()
        rec = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
        rec.record(_make_span())
        rec.record(_make_span())
        summary = sink.summary("hieras")
        assert summary["lookups"] == 2
        assert summary["hops_by_layer"] == {"1": 2, "2": 4}
        assert summary["low_layer_hop_share"] == pytest.approx(2 / 3)
        assert summary["hops"]["count"] == 2.0

    def test_memory_sink(self):
        sink = MemorySink()
        SpanRecorder(sinks=[sink]).record(_make_span())
        assert len(sink) == 1
        sink.clear()
        assert len(sink) == 0


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        null.inc("a", 5)
        null.observe("h", 1.0)
        null.set_gauge("g", 2.0)
        assert null.counter("a").value == 0
        assert null.histogram("h").count == 0
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timers": {},
        }

    def test_recorder_defaults_to_null(self):
        rec = SpanRecorder()
        assert rec.registry is NULL_REGISTRY
        rec.record(_make_span())  # must not raise, must not accumulate
        assert NULL_REGISTRY.counter("hieras.lookups").value == 0


class TestNetworkInstrumentationOffByDefault:
    """The structural no-overhead contract: metrics is None by default."""

    def test_stacks_default_off(self, small_networks):
        chord, hieras = small_networks
        assert chord.metrics is None
        assert hieras.metrics is None

    def test_sim_defaults_off(self):
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency())
        assert sim.metrics is None
        assert net.metrics is None

    def test_route_emits_nothing_when_off(self, small_networks):
        chord, hieras = small_networks
        sink = MemorySink()
        # A recorder exists but is never attached — routing must not see it.
        SpanRecorder(sinks=[sink])
        chord.route(0, 12345)
        hieras.route(0, 12345)
        assert len(sink) == 0

    def test_enable_disable_round_trip(self, small_networks):
        chord, _ = small_networks
        sink = MemorySink()
        rec = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
        assert chord.enable_tracing(rec) is rec
        chord.route(1, 999)
        chord.disable_tracing()
        chord.route(2, 999)
        assert chord.metrics is None
        assert len(sink) == 1 and sink.spans[0].network == "chord"


def _build_protocol_pair():
    space = IdSpace(12)
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency(), loss_seed=5)
    a = ChordProtocolNode(0, 100, space, sim, net)
    b = ChordProtocolNode(1, 2000, space, sim, net)
    return sim, net, a, b


class TestSimCounters:
    def test_counters_match_network_stats(self):
        sim, net, a, b = _build_protocol_pair()
        reg = MetricsRegistry()
        net.attach_metrics(reg)
        sim.attach_metrics(reg)
        a.send(1, "ping", x=1)
        a.send(1, "ping", x=2)
        b.send(0, "pong")
        net.loss_rate = 0.999999  # next cross-link send is (almost surely) lost
        a.send(1, "doomed")
        net.loss_rate = 0.0
        b.alive = False
        a.send(1, "to_dead")
        sim.run()
        stats = net.stats()
        assert reg.counter("sim.messages_sent").value == stats["messages_sent"]
        assert reg.counter("sim.messages_lost").value == stats["messages_lost"]
        assert reg.counter("sim.messages_dropped").value == stats["messages_dropped"]
        by_kind = {
            name.split("sim.sent.", 1)[1]: c.value
            for name, c in reg.counters.items()
            if name.startswith("sim.sent.")
        }
        assert by_kind == stats["sent_by_kind"]
        assert reg.histogram("sim.link_delay_ms").total == pytest.approx(
            stats["total_delay_ms"]
        )
        assert reg.counter("sim.events_processed").value == sim.events_processed
        assert reg.gauge("sim.clock_ms").value == sim.now

    def test_protocol_lookup_counters(self):
        space = IdSpace(12)
        rng = np.random.default_rng(0)
        ids = space.sample_unique_ids(8, rng)
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency())
        reg = net.attach_metrics(MetricsRegistry())
        from repro.dht.chord_protocol import GLOBAL_RING

        nodes = [ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(8)]
        nodes[0].create_ring(GLOBAL_RING)
        for p in range(1, 8):
            sim.schedule_at(p * 200.0, nodes[p].join_ring, GLOBAL_RING, 0)
        sim.run(until=20_000, max_events=2_000_000)
        done = []
        for k in (5, 600, 2100, 4000):
            nodes[2].lookup(k, done.append)
        sim.run(until=sim.now + 10_000, max_events=2_000_000)
        assert len(done) == 4
        assert reg.counter("protocol.lookups").value == 4
        assert reg.counter("protocol.lookups_completed").value == 4
        assert reg.histogram("protocol.lookup_hops").count == 4


class TestRegistryMergeAndSnapshot:
    def test_merge_folds_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("only_b")
        a.observe("h", 1.0)
        b.observe("h", 10.0)
        b.set_gauge("g", 7.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("only_b").value == 1
        assert a.histogram("h").count == 2
        assert a.gauge("g").value == 7.0

    def test_snapshot_stable_and_json_safe(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise


class TestHierasSpanLayers:
    """Acceptance: per-hop ring layers with a majority in lower rings."""

    @pytest.fixture(scope="class")
    def traced(self):
        from repro.experiments.config import SimConfig
        from repro.experiments.runner import build_bundle, make_trace

        bundle = build_bundle(SimConfig(n_peers=1000, seed=42))
        sink = MemorySink()
        rec = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
        bundle.hieras.enable_tracing(rec)
        try:
            for source, key in make_trace(bundle, 3000):
                bundle.hieras.route(int(source), int(key))
        finally:
            bundle.hieras.disable_tracing()
        return bundle, rec, sink

    def test_spans_annotate_every_hop(self, traced):
        bundle, rec, sink = traced
        span = max(sink.spans, key=lambda s: s.n_hops)
        assert span.n_hops == len(span.layers)
        for hop in span.hops:
            assert 1 <= hop.layer <= bundle.hieras.depth
            if hop.layer == 1:
                assert hop.ring == "global"
            else:
                assert hop.ring == bundle.hieras.ring_name_of(hop.src, hop.layer)
        # Bottom-up routing: layer numbers never increase along the path.
        assert span.layers == sorted(span.layers, reverse=True)

    def test_span_matches_route_result(self, traced):
        bundle, rec, sink = traced
        span = sink.spans[0]
        result = bundle.hieras.route(span.source, span.key)
        assert [h.dst for h in span.hops] == result.path[1:]
        assert span.latency_ms == pytest.approx(result.latency_ms)
        assert span.low_layer_hops == result.low_layer_hops

    def test_majority_of_hops_in_lower_rings(self, traced):
        _, rec, sink = traced
        share = rec.low_layer_hop_share("hieras")
        assert share > 0.5
        per_span = [s.low_layer_hops for s in sink.spans]
        total = sum(s.n_hops for s in sink.spans)
        assert sum(per_span) / total == pytest.approx(share)
