"""Tests for request traces and churn schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ids import IdSpace
from repro.workloads.churn import generate_churn
from repro.workloads.requests import RequestTrace, generate_requests, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100).sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(50, exponent=1.0)
        assert np.all(np.diff(w) < 0)

    def test_exponent_controls_skew(self):
        flat = zipf_weights(100, exponent=0.2)
        skewed = zipf_weights(100, exponent=1.5)
        assert skewed[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, exponent=0)


class TestRequestTrace:
    def test_uniform_shape_and_ranges(self):
        space = IdSpace(16)
        trace = generate_requests(1000, 50, space, seed=1)
        assert len(trace) == 1000
        assert trace.sources.max() < 50
        assert int(trace.keys.max()) < space.size

    def test_deterministic(self):
        space = IdSpace(16)
        a = generate_requests(100, 10, space, seed=2)
        b = generate_requests(100, 10, space, seed=2)
        np.testing.assert_array_equal(a.keys, b.keys)
        np.testing.assert_array_equal(a.sources, b.sources)

    def test_zipf_concentrates_keys(self):
        space = IdSpace(32)
        trace = generate_requests(
            5000, 10, space, seed=3, key_dist="zipf", catalog_size=1000
        )
        _, counts = np.unique(trace.keys, return_counts=True)
        # Zipf: the most popular key appears far more than the average.
        assert counts.max() > 10 * counts.mean()

    def test_zipf_keys_from_catalog(self):
        space = IdSpace(32)
        catalog = {space.hash_key(f"file-{i}") for i in range(50)}
        trace = generate_requests(
            200, 10, space, seed=4, key_dist="zipf", catalog_size=50
        )
        assert set(int(k) for k in trace.keys) <= catalog

    def test_iteration(self):
        space = IdSpace(16)
        trace = generate_requests(10, 5, space, seed=5)
        pairs = list(trace)
        assert len(pairs) == 10
        assert all(isinstance(s, int) and isinstance(k, int) for s, k in pairs)

    def test_split(self):
        space = IdSpace(16)
        trace = generate_requests(100, 5, space, seed=6)
        parts = trace.split(3)
        assert sum(len(p) for p in parts) == 100
        np.testing.assert_array_equal(
            np.concatenate([p.keys for p in parts]), trace.keys
        )

    def test_split_more_parts_than_requests(self):
        """parts > len(trace): empty chunks are dropped, nothing is lost."""
        space = IdSpace(16)
        trace = generate_requests(4, 5, space, seed=6)
        parts = trace.split(9)
        assert len(parts) == 4
        assert all(len(p) == 1 for p in parts)
        np.testing.assert_array_equal(
            np.concatenate([p.keys for p in parts]), trace.keys
        )

    def test_split_single_part_is_whole_trace(self):
        space = IdSpace(16)
        trace = generate_requests(37, 5, space, seed=6)
        parts = trace.split(1)
        assert len(parts) == 1
        np.testing.assert_array_equal(parts[0].sources, trace.sources)
        np.testing.assert_array_equal(parts[0].keys, trace.keys)

    def test_split_recombination_preserves_order(self):
        """Concatenating the chunks reproduces the trace element-for-element."""
        space = IdSpace(16)
        trace = generate_requests(101, 7, space, seed=8)
        for parts_n in (2, 3, 7):
            parts = trace.split(parts_n)
            np.testing.assert_array_equal(
                np.concatenate([p.sources for p in parts]), trace.sources
            )
            np.testing.assert_array_equal(
                np.concatenate([p.keys for p in parts]), trace.keys
            )

    def test_validation(self):
        space = IdSpace(16)
        with pytest.raises(ValueError):
            generate_requests(0, 5, space)
        with pytest.raises(ValueError):
            generate_requests(5, 5, space, key_dist="bogus")
        with pytest.raises(ValueError):
            RequestTrace(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            generate_requests(5, 5, space).split(0)


class TestZipfTraceRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        """A Zipf trace survives save_trace/load_trace bit-exactly."""
        from repro.workloads.io import load_trace, save_trace

        space = IdSpace(16)
        trace = generate_requests(
            300, 20, space, seed=11, key_dist="zipf",
            catalog_size=64, zipf_exponent=1.1,
        )
        path = tmp_path / "zipf.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.sources, trace.sources)
        np.testing.assert_array_equal(loaded.keys, trace.keys)
        assert loaded.keys.dtype == trace.keys.dtype
        assert list(loaded) == list(trace)


class TestChurn:
    def test_events_sorted_by_time(self):
        sched = generate_churn(
            universe=50, initial=20, duration_ms=60_000,
            mean_session_ms=20_000, mean_offline_ms=20_000, seed=1,
        )
        times = [e.time_ms for e in sched.events]
        assert times == sorted(times)

    def test_initial_peers(self):
        sched = generate_churn(
            universe=50, initial=20, duration_ms=10_000,
            mean_session_ms=5_000, mean_offline_ms=5_000, seed=2,
        )
        assert sched.initial_peers == tuple(range(20))

    def test_per_peer_alternation(self):
        """A peer's events must alternate join/departure, starting with
        a departure if initially online, a join otherwise."""
        sched = generate_churn(
            universe=30, initial=10, duration_ms=200_000,
            mean_session_ms=10_000, mean_offline_ms=10_000, seed=3,
        )
        for peer in range(30):
            actions = [e.action for e in sched.events if e.peer == peer]
            online = peer < 10
            for action in actions:
                if online:
                    assert action in ("leave", "fail")
                else:
                    assert action == "join"
                online = not online

    def test_fail_fraction_extremes(self):
        all_fail = generate_churn(
            universe=30, initial=30, duration_ms=100_000,
            mean_session_ms=10_000, mean_offline_ms=10_000,
            fail_fraction=1.0, seed=4,
        )
        assert all(e.action == "fail" for e in all_fail.departures())
        none_fail = generate_churn(
            universe=30, initial=30, duration_ms=100_000,
            mean_session_ms=10_000, mean_offline_ms=10_000,
            fail_fraction=0.0, seed=4,
        )
        assert all(e.action == "leave" for e in none_fail.departures())

    def test_deterministic(self):
        kw = dict(
            universe=20, initial=10, duration_ms=50_000,
            mean_session_ms=8_000, mean_offline_ms=8_000, seed=5,
        )
        assert generate_churn(**kw).events == generate_churn(**kw).events

    def test_whole_schedule_identical_per_seed(self):
        """Same seed ⇒ the full ChurnSchedule (events, initial peers,
        universe) compares equal — fault experiments replay it on both
        stacks and rely on exact identity."""
        kw = dict(
            universe=25, initial=12, duration_ms=80_000,
            mean_session_ms=9_000, mean_offline_ms=7_000,
            fail_fraction=0.3,
        )
        a = generate_churn(seed=9, **kw)
        b = generate_churn(seed=9, **kw)
        assert a == b
        assert generate_churn(seed=10, **kw).events != a.events

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_across_seeds(self, seed):
        kw = dict(
            universe=12, initial=6, duration_ms=40_000,
            mean_session_ms=6_000, mean_offline_ms=6_000, seed=seed,
        )
        assert generate_churn(**kw).events == generate_churn(**kw).events

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_events_within_duration(self, seed):
        sched = generate_churn(
            universe=10, initial=5, duration_ms=30_000,
            mean_session_ms=5_000, mean_offline_ms=5_000, seed=seed,
        )
        assert all(0 < e.time_ms < 30_000 for e in sched.events)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_churn(
                universe=1, initial=1, duration_ms=1000,
                mean_session_ms=10, mean_offline_ms=10,
            )
        with pytest.raises(ValueError):
            generate_churn(
                universe=10, initial=0, duration_ms=1000,
                mean_session_ms=10, mean_offline_ms=10,
            )
        with pytest.raises(ValueError):
            generate_churn(
                universe=10, initial=5, duration_ms=1000,
                mean_session_ms=10, mean_offline_ms=10, fail_fraction=2.0,
            )
