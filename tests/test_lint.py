"""Tests for ``repro.lint`` — the determinism & simulation-safety analyzer.

Each checker gets true-positive fixtures, known false-positive fixtures
that must stay silent, and pragma-suppression coverage; the CLI's exit
codes are checked end to end.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_CHECKERS, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_paths, module_name_for

CORE = Path("src/repro/core/_fixture.py")
DHT = Path("src/repro/dht/_fixture.py")
SIM = Path("src/repro/sim/_fixture.py")
EXPERIMENTS = Path("src/repro/experiments/_fixture.py")
ANALYSIS = Path("src/repro/analysis/_fixture.py")
RNG_MODULE = Path("src/repro/util/rng.py")
TESTS = Path("tests/test_fixture.py")


def run(source: str, path: Path = CORE) -> list:
    return lint_source(path, textwrap.dedent(source), ALL_CHECKERS)


def rules(source: str, path: Path = CORE) -> list[str]:
    return [f.rule for f in run(source, path)]


# ----------------------------------------------------------------------
# engine basics
# ----------------------------------------------------------------------
class TestEngine:
    def test_module_name_mapping(self):
        assert module_name_for(Path("src/repro/dht/chord.py")) == "repro.dht.chord"
        assert module_name_for(Path("src/repro/util/__init__.py")) == "repro.util"
        assert module_name_for(Path("tests/test_chord.py")) == "tests.test_chord"
        assert module_name_for(Path("scripts/tool.py")) == "tool"

    def test_syntax_error_reported_not_raised(self):
        findings = run("def broken(:\n", CORE)
        assert [f.rule for f in findings] == ["LNT000"]

    def test_findings_sorted_and_rendered(self):
        findings = run(
            """
            import time
            import random
            time.time()
            """,
            SIM,
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        rendered = findings[0].render()
        assert "_fixture.py:" in rendered and findings[0].rule in rendered

    def test_pragma_inside_string_literal_is_ignored(self):
        findings = run(
            'import time\nx = time.time() if "# lint: allow-wallclock -- no" else 0\n',
            SIM,
        )
        assert [f.rule for f in findings] == ["DET002"]


# ----------------------------------------------------------------------
# DET001 — randomness through repro.util.rng only
# ----------------------------------------------------------------------
class TestRngChecker:
    def test_flags_direct_default_rng_in_src(self):
        assert rules("import numpy as np\nrng = np.random.default_rng(3)\n") == ["DET001"]

    def test_flags_stdlib_random_import(self):
        assert rules("import random\n") == ["DET001"]
        assert rules("from random import choice\n") == ["DET001"]

    def test_flags_global_seed_and_legacy_api(self):
        assert rules("import numpy as np\nnp.random.seed(0)\n") == ["DET001"]
        assert rules("import numpy as np\nx = np.random.rand(3)\n") == ["DET001"]

    def test_rng_module_itself_is_exempt(self):
        assert rules("import numpy as np\nrng = np.random.default_rng(0)\n", RNG_MODULE) == []

    def test_make_rng_stays_silent(self):
        assert rules("from repro.util.rng import make_rng\nrng = make_rng(7)\n") == []

    def test_tests_may_seed_explicitly_but_not_draw_entropy(self):
        assert rules("import numpy as np\nrng = np.random.default_rng(42)\n", TESTS) == []
        assert rules("import numpy as np\nrng = np.random.default_rng()\n", TESTS) == ["DET001"]
        assert rules("import random\n", TESTS) == ["DET001"]


# ----------------------------------------------------------------------
# DET002 — no wall-clock in the deterministic stacks
# ----------------------------------------------------------------------
class TestWallClockChecker:
    @pytest.mark.parametrize(
        "call", ["time.time()", "time.perf_counter()", "time.monotonic_ns()"]
    )
    def test_flags_time_calls_in_scope(self, call):
        assert rules(f"import time\nt = {call}\n", SIM) == ["DET002"]

    def test_flags_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rules(src, DHT) == ["DET002"]

    def test_experiments_are_in_scope(self):
        assert rules("import time\nt = time.perf_counter()\n", EXPERIMENTS) == ["DET002"]

    def test_out_of_scope_modules_stay_silent(self):
        assert rules("import time\nt = time.perf_counter()\n", ANALYSIS) == []

    def test_simulated_time_stays_silent(self):
        assert rules("def f(sim):\n    return sim.now\n", SIM) == []

    def test_pragma_with_reason_suppresses(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # lint: allow-wallclock -- phase timing only\n"
        )
        assert rules(src, EXPERIMENTS) == []

    def test_rule_id_works_as_pragma_name_too(self):
        src = "import time\nt = time.time()  # lint: allow-det002 -- timing harness\n"
        assert rules(src, SIM) == []

    def test_pragma_without_reason_does_not_suppress(self):
        src = "import time\nt = time.time()  # lint: allow-wallclock\n"
        assert sorted(rules(src, SIM)) == ["DET002", "LNT100"]

    def test_multiline_statement_pragma_on_last_line(self):
        src = (
            "import time\n"
            "t = time.time(\n"
            ")  # lint: allow-wallclock -- spans the whole statement\n"
        )
        assert rules(src, SIM) == []


# ----------------------------------------------------------------------
# DET003 — unordered iteration must not reach results
# ----------------------------------------------------------------------
class TestUnsortedIterationChecker:
    def test_flags_comprehension_over_dict_view_in_return(self):
        src = """
        def f(d):
            return [k for k in d.items()]
        """
        assert rules(src) == ["DET003"]

    def test_flags_set_materialization(self):
        src = """
        def f():
            s = {1, 2, 3}
            return list(s)
        """
        assert rules(src) == ["DET003"]

    def test_flags_annotated_set_local(self):
        src = """
        import numpy as np
        def f(count):
            ids: set[int] = set()
            return np.fromiter(ids, dtype=np.int64, count=count)
        """
        assert rules(src) == ["DET003"]

    def test_flags_loop_appending_to_returned_list(self):
        src = """
        def f(d):
            out = []
            for k, v in d.items():
                out.append(v)
            return out
        """
        assert rules(src) == ["DET003"]

    def test_flags_loop_storing_into_escaping_dict(self):
        src = """
        class C:
            def rebuild(self, catalog):
                desired = {}
                for key, value in catalog.items():
                    desired[key] = value
                self.stored = desired
        """
        assert rules(src) == ["DET003"]

    def test_flags_comprehension_feeding_rng_choice(self):
        src = """
        def f(rng, d):
            pick = rng.choice([k for k in d.keys()])
        """
        assert rules(src) == ["DET003"]

    def test_sorted_wrapping_silences(self):
        src = """
        def f(d):
            for k, v in sorted(d.items()):
                yield k
            return [k for k in sorted(d.keys())]
        """
        assert rules(src) == []

    def test_accumulation_loop_stays_silent(self):
        src = """
        def f(d):
            total = 0
            for k, v in d.items():
                total += v
            return total
        """
        assert rules(src) == []

    def test_order_insensitive_reducers_stay_silent(self):
        src = """
        def f(d, s):
            a = sum(v for v in d.values())
            b = max(s)
            c = set(x + 1 for x in s)
            return a + b + len(c)
        """
        assert rules(src) == []

    def test_membership_only_set_stays_silent(self):
        # The inet/brite `edge_set` idiom: a set used purely for
        # membership while an ordered list carries the order.
        src = """
        def f(pairs):
            edge_set = set()
            edges = []
            for pair in pairs:
                if pair in edge_set:
                    continue
                edge_set.add(pair)
                edges.append(pair)
            return edges
        """
        assert rules(src) == []

    def test_out_of_scope_module_stays_silent(self):
        assert rules("def f(d):\n    return [k for k in d.items()]\n", ANALYSIS) == []


# ----------------------------------------------------------------------
# MET001 — metrics stay behind a guard on dht/sim hot paths
# ----------------------------------------------------------------------
class TestMetricsGuardChecker:
    def test_flags_unguarded_call(self):
        src = """
        class Net:
            def send(self):
                self.metrics.inc("sim.messages_sent")
        """
        assert rules(src, SIM) == ["MET001"]

    def test_is_none_guard_silences(self):
        src = """
        class Net:
            def send(self):
                if self.metrics is not None:
                    self.metrics.inc("sim.messages_sent")
        """
        assert rules(src, SIM) == []

    def test_alias_guard_silences(self):
        src = """
        class Net:
            def send(self):
                m = self.metrics
                if m is not None:
                    m.inc("sim.messages_sent")
                    m.observe("sim.delay", 1.0)
        """
        assert rules(src, SIM) == []

    def test_unguarded_alias_flagged(self):
        src = """
        class Net:
            def send(self):
                m = self.metrics
                m.inc("sim.messages_sent")
        """
        assert rules(src, SIM) == ["MET001"]

    def test_early_return_guard_silences(self):
        src = """
        class Net:
            def send(self):
                if self.metrics is None:
                    return
                self.metrics.inc("sim.messages_sent")
        """
        assert rules(src, SIM) == []

    def test_boolop_guard_silences(self):
        src = """
        class Net:
            def send(self):
                ok = self.metrics is not None and self.metrics.inc("x") is None
        """
        assert rules(src, SIM) == []

    def test_attach_assignment_is_exempt(self):
        src = """
        class Net:
            def attach_metrics(self, registry):
                self.metrics = registry
                return self.metrics
        """
        assert rules(src, SIM) == []

    def test_out_of_scope_module_stays_silent(self):
        src = """
        class Exp:
            def run(self):
                self.metrics.inc("x")
        """
        assert rules(src, EXPERIMENTS) == []


# ----------------------------------------------------------------------
# INT001 — interval math through repro.util.intervals
# ----------------------------------------------------------------------
class TestIntervalChecker:
    def test_flags_chained_id_comparison(self):
        src = """
        def owns(pred, x, node):
            return pred < x <= node
        """
        assert rules(src, DHT) == ["INT001"]

    def test_bounds_check_against_len_stays_silent(self):
        src = """
        def valid(i, xs):
            return 0 <= i < len(xs)
        """
        assert rules(src, DHT) == []

    def test_literal_bounds_stay_silent(self):
        assert rules("def f(x):\n    return -1 < x <= 10\n", DHT) == []

    def test_two_operand_compare_stays_silent(self):
        assert rules("def f(a, b):\n    return a < b\n", DHT) == []

    def test_out_of_scope_module_stays_silent(self):
        assert rules("def f(a, x, b):\n    return a < x <= b\n", SIM) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "def owns(pred, x, node):\n"
            "    return pred < x <= node  # lint: allow-interval -- ids pre-unwrapped by caller\n"
        )
        assert rules(src, DHT) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _write(self, root: Path, relpath: str, source: str) -> Path:
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write(
            tmp_path, "src/repro/core/bad.py",
            "import numpy as np\nrng = np.random.default_rng(1)\n",
        )
        assert lint_main([str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py:2" in out

    def test_exit_zero_when_all_findings_suppressed(self, tmp_path):
        self._write(
            tmp_path, "src/repro/core/ok.py",
            "import numpy as np\n"
            "rng = np.random.default_rng(1)"
            "  # lint: allow-rng -- fixture generator, single consumer\n",
        )
        assert lint_main([str(tmp_path / "src")]) == 0

    def test_reasonless_pragma_fails_the_run(self, tmp_path, capsys):
        self._write(
            tmp_path, "src/repro/core/bad.py",
            "import numpy as np\n"
            "rng = np.random.default_rng(1)  # lint: allow-rng\n",
        )
        assert lint_main([str(tmp_path / "src")]) == 1
        assert "LNT100" in capsys.readouterr().out

    def test_select_restricts_rules(self, tmp_path):
        self._write(
            tmp_path, "src/repro/sim/bad.py",
            "import time\nimport random\nt = time.time()\n",
        )
        assert lint_main(["--select", "DET001", str(tmp_path / "src")]) == 1
        assert lint_main(["--select", "MET001", str(tmp_path / "src"), "-q"]) == 0

    def test_unknown_rule_or_empty_path_is_usage_error(self, tmp_path):
        self._write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        with pytest.raises(SystemExit) as exc:
            lint_main(["--select", "NOPE01", str(tmp_path / "src")])
        assert exc.value.code == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit) as exc:
            lint_main([str(empty)])
        assert exc.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            lint_main([str(tmp_path / "nope.py")])
        assert exc.value.code == 2

    def test_lint_paths_accepts_single_files(self, tmp_path):
        bad = self._write(
            tmp_path, "src/repro/core/bad.py", "import random\n"
        )
        findings = lint_paths([bad], ALL_CHECKERS)
        assert [f.rule for f in findings] == ["DET001"]


# ----------------------------------------------------------------------
# the analyzer ships clean against its own repository
# ----------------------------------------------------------------------
class TestSelfHosting:
    def test_repo_tree_is_clean(self):
        root = Path(__file__).resolve().parent.parent
        trees = [
            root / name
            for name in ("src", "tests", "benchmarks", "examples")
            if (root / name).exists()
        ]
        findings = lint_paths(trees, ALL_CHECKERS)
        assert findings == [], "\n".join(f.render() for f in findings)
