"""Tests for the statistics and table-rendering toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    RouteSample,
    cdf,
    collect_routes,
    hop_pdf,
    ratio_percent,
    summarize,
)
from repro.analysis.tables import format_table, render_series
from repro.workloads.requests import generate_requests


class TestCollectRoutes:
    def test_matches_manual_routing(self, small_networks):
        chord, hieras = small_networks
        space = chord.space
        trace = generate_requests(50, chord.n_peers, space, seed=7)
        sample = collect_routes(hieras, trace)
        assert len(sample) == 50
        for i, (s, k) in enumerate(trace):
            r = hieras.route(s, k)
            assert sample.hops[i] == r.hops
            assert sample.latency_ms[i] == pytest.approx(r.latency_ms)
            assert sample.low_layer_hops[i] == r.low_layer_hops

    def test_low_layer_latency_split(self, small_networks):
        _, hieras = small_networks
        space = hieras.space
        trace = generate_requests(100, hieras.n_peers, space, seed=8)
        sample = collect_routes(hieras, trace)
        assert np.all(sample.low_layer_latency_ms <= sample.latency_ms + 1e-9)
        assert sample.low_layer_latency_ms.sum() > 0

    def test_flat_network_has_no_low_layer(self, small_networks):
        chord, _ = small_networks
        trace = generate_requests(50, chord.n_peers, chord.space, seed=9)
        sample = collect_routes(chord, trace)
        assert sample.low_layer_hops.sum() == 0
        assert sample.low_layer_hop_share == 0.0
        np.testing.assert_array_equal(sample.top_layer_hops, sample.hops)


class TestRouteSample:
    def make(self):
        return RouteSample(
            hops=np.asarray([2, 4, 6]),
            latency_ms=np.asarray([10.0, 20.0, 30.0]),
            low_layer_hops=np.asarray([1, 2, 3]),
            top_layer_hops=np.asarray([1, 2, 3]),
            low_layer_latency_ms=np.asarray([5.0, 5.0, 5.0]),
        )

    def test_means(self):
        s = self.make()
        assert s.mean_hops == 4.0
        assert s.mean_latency_ms == 20.0
        assert s.mean_top_layer_hops == 2.0

    def test_shares(self):
        s = self.make()
        assert s.low_layer_hop_share == pytest.approx(0.5)
        assert s.low_layer_latency_share == pytest.approx(15.0 / 60.0)

    def test_link_delays(self):
        s = self.make()
        assert s.mean_link_delay(layer="all") == pytest.approx(60.0 / 12)
        assert s.mean_link_delay(layer="low") == pytest.approx(15.0 / 6)
        assert s.mean_link_delay(layer="top") == pytest.approx(45.0 / 6)
        with pytest.raises(ValueError):
            s.mean_link_delay(layer="middle")

    def test_default_low_latency_zeros(self):
        s = RouteSample(
            hops=np.asarray([1]),
            latency_ms=np.asarray([5.0]),
            low_layer_hops=np.asarray([0]),
            top_layer_hops=np.asarray([1]),
        )
        assert s.low_layer_latency_ms.tolist() == [0.0]


class TestSummaries:
    def test_summarize_keys(self):
        out = summarize(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert out["mean"] == 2.5
        assert out["median"] == 2.5
        assert out["min"] == 1.0 and out["max"] == 4.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize(np.asarray([]))

    def test_ratio_percent(self):
        assert ratio_percent(1.0, 2.0) == 50.0
        assert np.isnan(ratio_percent(1.0, 0.0))


class TestDistributions:
    def test_hop_pdf_sums_to_one(self):
        xs, pdf = hop_pdf(np.asarray([0, 1, 1, 2, 5]))
        assert pdf.sum() == pytest.approx(1.0)
        assert xs.tolist() == [0, 1, 2, 3, 4, 5]
        assert pdf[1] == pytest.approx(0.4)

    def test_hop_pdf_max_hops_pads(self):
        xs, pdf = hop_pdf(np.asarray([1, 1]), max_hops=4)
        assert len(xs) == 5
        assert pdf[4] == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_hop_pdf_property(self, hops):
        _, pdf = hop_pdf(np.asarray(hops))
        assert pdf.sum() == pytest.approx(1.0)
        assert (pdf >= 0).all()

    def test_cdf_monotone_and_bounded(self):
        xs, fs = cdf(np.asarray([5.0, 1.0, 3.0, 3.0]), points=20)
        assert np.all(np.diff(fs) >= 0)
        assert fs[-1] == pytest.approx(1.0)
        assert xs[0] == 1.0 and xs[-1] == 5.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40)
    def test_cdf_property(self, values):
        _, fs = cdf(np.asarray(values), points=17)
        assert np.all(np.diff(fs) >= -1e-12)
        assert 0 <= fs[0] <= 1 and fs[-1] == pytest.approx(1.0)


class TestTables:
    def test_format_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_markdown(self):
        text = format_table([{"a": 1}], markdown=True)
        assert text.startswith("| a")
        assert "|---" in text or "|----" in text.splitlines()[1]

    def test_header_order_and_missing_cells(self):
        text = format_table([{"b": 2, "a": 1}, {"a": 3}], headers=["a", "b"])
        first_data_row = text.splitlines()[2]
        assert first_data_row.strip().startswith("1")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([])

    def test_render_series(self):
        text = render_series("x", [1, 2], {"y": [10, 20], "z": [1.5, 2.5]})
        assert "x" in text and "y" in text and "z" in text
        assert "10" in text and "2.5" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"y": [10]})

    def test_float_formatting(self):
        text = format_table([{"v": 3.14159}, {"v": 12345.6}, {"v": float("nan")}])
        assert "3.142" in text
        assert "nan" in text


class TestLayerBreakdown:
    def test_two_rows_sum_to_totals(self, small_networks):
        from repro.analysis.stats import layer_breakdown

        _, hieras = small_networks
        trace = generate_requests(200, hieras.n_peers, hieras.space, seed=21)
        sample = collect_routes(hieras, trace)
        rows = layer_breakdown(sample)
        assert [r["layer"] for r in rows] == ["lower_rings", "global_ring"]
        assert sum(r["hop_share_pct"] for r in rows) == pytest.approx(100.0)
        assert sum(r["latency_share_pct"] for r in rows) == pytest.approx(100.0)
        assert (
            rows[0]["hops_per_request"] + rows[1]["hops_per_request"]
            == pytest.approx(sample.mean_hops)
        )

    def test_paper_shape(self, small_networks):
        """§4.3's claim at test scale: lower rings carry a larger hop
        share than latency share (their links are cheaper)."""
        from repro.analysis.stats import layer_breakdown

        _, hieras = small_networks
        trace = generate_requests(500, hieras.n_peers, hieras.space, seed=22)
        rows = layer_breakdown(collect_routes(hieras, trace))
        low = rows[0]
        assert low["hop_share_pct"] > low["latency_share_pct"]
        assert low["mean_link_delay_ms"] < rows[1]["mean_link_delay_ms"]
