"""Tests for DOT export helpers."""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.topology.export import rings_to_dot, topology_to_dot
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.util.ids import IdSpace


class TestTopologyDot:
    def test_valid_dot_structure(self):
        topo = generate_transit_stub(TransitStubParams.for_size(100), seed=1)
        dot = topology_to_dot(topo)
        assert dot.startswith("graph topology {")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == topo.n_edges
        # Transit routers get highlighted nodes.
        assert dot.count("fillcolor=red") == len(topo.transit_routers)

    def test_size_guard(self):
        topo = generate_transit_stub(TransitStubParams.for_size(1000), seed=1)
        with pytest.raises(ValueError, match="max_routers"):
            topology_to_dot(topo)
        assert topology_to_dot(topo, max_routers=topo.n_routers)


class TestRingsDot:
    @pytest.fixture(scope="class")
    def hieras(self):
        rng = np.random.default_rng(2)
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, rng)
        orders = BinningScheme.default_for_depth(2).orders(
            rng.uniform(0, 300, size=(40, 4))
        )
        return HierasNetwork(space, ids, landmark_orders=orders, depth=2)

    def test_clusters_per_ring(self, hieras):
        dot = rings_to_dot(hieras)
        assert dot.count("subgraph cluster_") == len(hieras.rings_at_layer(2))
        # Every peer appears exactly once as a node declaration.
        assert dot.count("[label=") >= hieras.n_peers

    def test_cycles_drawn(self, hieras):
        dot = rings_to_dot(hieras)
        edges = dot.count(" -- ")
        expected = sum(
            len(r) for r in hieras.rings_at_layer(2).values() if len(r) >= 2
        )
        assert edges == expected

    def test_size_guard(self, hieras):
        with pytest.raises(ValueError, match="max_peers"):
            rings_to_dot(hieras, max_peers=10)
