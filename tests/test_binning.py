"""Tests for the distributed binning scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import (
    DEFAULT_LEVELS,
    BinningScheme,
    quantise_levels,
)

PAPER_DISTANCES = np.asarray(
    [
        [25, 5, 30, 100],
        [40, 18, 12, 200],
        [100, 180, 5, 10],
        [160, 220, 8, 20],
        [45, 10, 100, 5],
        [20, 140, 50, 40],
    ],
    dtype=np.float64,
)
PAPER_ORDERS = ["1012", "1002", "2200", "2200", "1020", "0211"]


class TestQuantiseLevels:
    def test_paper_table1_every_cell(self):
        levels = quantise_levels(PAPER_DISTANCES.ravel(), (20.0, 100.0))
        digits = "".join(str(int(v)) for v in levels)
        assert digits == "".join(PAPER_ORDERS)

    def test_boundary_cases_match_paper(self):
        # 20 ms -> level 0 (node F); 100 ms -> level 2 (nodes A, C, E).
        out = quantise_levels(np.asarray([20.0, 100.0]), (20.0, 100.0))
        assert out.tolist() == [0, 2]

    def test_interior(self):
        out = quantise_levels(np.asarray([0.0, 19.9, 20.1, 99.9, 100.1, 1e6]), (20.0, 100.0))
        assert out.tolist() == [0, 0, 1, 1, 2, 2]

    def test_more_boundaries(self):
        bounds = (10.0, 20.0, 50.0)
        out = quantise_levels(np.asarray([5, 15, 30, 49, 50, 60]), bounds)
        assert out.tolist() == [0, 1, 2, 2, 3, 3]

    @given(st.floats(min_value=0, max_value=1e4, allow_nan=False))
    def test_level_in_range(self, x):
        level = int(quantise_levels(np.asarray([x]), (20.0, 100.0))[0])
        assert 0 <= level <= 2

    @given(
        st.lists(st.floats(min_value=0, max_value=1e4), min_size=2, max_size=2).map(sorted)
    )
    def test_monotone_in_distance(self, pair):
        lo, hi = pair
        levels = quantise_levels(np.asarray([lo, hi]), (20.0, 100.0))
        assert levels[0] <= levels[1]


class TestBinningScheme:
    def test_default_levels_refine(self):
        for prev, nxt in zip(DEFAULT_LEVELS, DEFAULT_LEVELS[1:]):
            assert set(prev).issubset(set(nxt))

    def test_default_for_depth(self):
        assert BinningScheme.default_for_depth(2).depth == 2
        assert BinningScheme.default_for_depth(4).depth == 4
        with pytest.raises(ValueError):
            BinningScheme.default_for_depth(1)
        with pytest.raises(ValueError):
            BinningScheme.default_for_depth(5)

    def test_rejects_non_refining(self):
        with pytest.raises(ValueError, match="refine"):
            BinningScheme(((20.0, 100.0), (30.0, 100.0)))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BinningScheme(((100.0, 20.0),))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BinningScheme(())


class TestLandmarkOrders:
    @pytest.fixture()
    def orders3(self):
        return BinningScheme.default_for_depth(3).orders(PAPER_DISTANCES)

    def test_paper_orders(self, orders3):
        assert [orders3.order_of(i) for i in range(6)] == PAPER_ORDERS

    def test_dimensions(self, orders3):
        assert orders3.n_nodes == 6
        assert orders3.n_landmarks == 4
        assert orders3.depth == 3

    def test_deeper_names_nest(self, orders3):
        for i in range(6):
            child = orders3.order_of(i, layer_index=1)
            parent = orders3.order_of(i, layer_index=0)
            assert child.startswith(parent + "/")

    def test_nesting_invariant_rings(self, orders3):
        """Nodes sharing a layer-3 ring must share the layer-2 ring."""
        codes2, _ = orders3.ring_codes(0)
        codes3, _ = orders3.ring_codes(1)
        for a in range(6):
            for b in range(6):
                if codes3[a] == codes3[b]:
                    assert codes2[a] == codes2[b]

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_nesting_property_random(self, seed, n_nodes, n_landmarks):
        rng = np.random.default_rng(seed)
        distances = rng.uniform(0, 400, size=(n_nodes, n_landmarks))
        orders = BinningScheme.default_for_depth(4).orders(distances)
        for layer in (1, 2):
            shallow, _ = orders.ring_codes(layer - 1)
            deep, _ = orders.ring_codes(layer)
            for a in range(n_nodes):
                for b in range(n_nodes):
                    if deep[a] == deep[b]:
                        assert shallow[a] == shallow[b]

    def test_ring_codes_factorisation(self, orders3):
        codes, names = orders3.ring_codes(0)
        assert sorted(set(names)) == sorted(names)
        for i in range(6):
            assert names[codes[i]] == orders3.order_of(i)

    def test_drop_landmark(self, orders3):
        dropped = orders3.drop_landmark(3)
        assert dropped.n_landmarks == 3
        # Without L4, A's order loses its final digit.
        assert dropped.order_of(0) == "101"

    def test_drop_landmark_bounds(self, orders3):
        with pytest.raises(ValueError):
            orders3.drop_landmark(4)

    def test_drop_last_landmark_rejected(self):
        orders = BinningScheme.default_for_depth(2).orders(np.asarray([[5.0], [30.0]]))
        with pytest.raises(ValueError):
            orders.drop_landmark(0)

    def test_landmark_failure_merges_rings_only(self, orders3):
        """Dropping a landmark can only merge rings, never split them —
        survivors of a shared ring still share all remaining digits."""
        codes_before, _ = orders3.ring_codes(0)
        dropped = orders3.drop_landmark(1)
        codes_after, _ = dropped.ring_codes(0)
        for a in range(6):
            for b in range(6):
                if codes_before[a] == codes_before[b]:
                    assert codes_after[a] == codes_after[b]

    def test_table1_rows_layout(self, orders3):
        rows = orders3.table1_rows(labels=list("ABCDEF"))
        assert rows[0]["node"] == "A"
        assert rows[0]["order"] == "1012"
        assert rows[0]["dist_l2_ms"] == 5.0

    def test_many_levels_use_dot_separator(self):
        bounds = tuple(float(b) for b in range(1, 16))
        scheme = BinningScheme((bounds,))
        orders = scheme.orders(np.asarray([[100.0, 3.0]]))
        assert "." in orders.order_of(0)

    def test_rejects_bad_distance_shape(self):
        with pytest.raises(ValueError):
            BinningScheme.default_for_depth(2).orders(np.asarray([1.0, 2.0]))
