"""Tests for the file-sharing application layer."""

import numpy as np
import pytest

from repro.apps.filesharing import FileSharingSystem
from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.util.ids import IdSpace


def make_hieras(n=80, seed=1):
    rng = np.random.default_rng(seed)
    space = IdSpace(16)
    ids = space.sample_unique_ids(n, rng)
    orders = BinningScheme.default_for_depth(2).orders(
        rng.uniform(0, 300, size=(n, 4))
    )
    return HierasNetwork(space, ids, landmark_orders=orders, depth=2)


def make_chord(n=80, seed=1):
    rng = np.random.default_rng(seed)
    space = IdSpace(16)
    ids = space.sample_unique_ids(n, rng)
    return ChordNetwork(space, ids)


class TestQuietService:
    def test_all_queries_succeed_without_churn(self):
        system = FileSharingSystem(make_hieras(), catalog_size=200, seed=2)
        metrics = system.run_round(queries=150)
        assert metrics.success_rate == 1.0
        assert metrics.mean_hops > 0
        assert metrics.online_peers == 80

    def test_over_chord_too(self):
        system = FileSharingSystem(make_chord(), catalog_size=200, seed=2)
        metrics = system.run_round(queries=100)
        assert metrics.success_rate == 1.0

    def test_popular_files_dominate_queries(self):
        system = FileSharingSystem(
            make_chord(), catalog_size=100, zipf_exponent=1.2, seed=3
        )
        # Popularity weights are strongly skewed.
        assert system.popularity[0] > 10 * system.popularity[-1]


class TestChurnedService:
    def test_replication_survives_moderate_churn(self):
        system = FileSharingSystem(
            make_hieras(n=100, seed=4), catalog_size=300, replicas=2, seed=5
        )
        rounds = system.run(6, queries_per_round=100, churn_per_round=3)
        summary = system.summary()
        assert summary["availability"] > 0.97
        assert summary["total_repair_moves"] >= 0
        assert len(rounds) == 6

    def test_no_replication_loses_data_under_churn(self):
        """With replicas=0, crashed owners take their keys with them —
        availability must visibly drop (the point of replication)."""
        lossy = FileSharingSystem(
            make_hieras(n=60, seed=6), catalog_size=300, replicas=0, seed=7
        )
        replicated = FileSharingSystem(
            make_hieras(n=60, seed=6), catalog_size=300, replicas=2, seed=7
        )
        for system in (lossy, replicated):
            system.run(5, queries_per_round=120, churn_per_round=4)
        assert (
            lossy.summary()["availability"]
            < replicated.summary()["availability"]
        )

    def test_rejoining_peers_reenter_their_rings(self):
        net = make_hieras(n=60, seed=8)
        system = FileSharingSystem(net, catalog_size=50, seed=9)
        before = {p: net.ring_name_of(p, 2) for p in range(60)}
        system.run_round(queries=10, fail=5)
        system.run_round(queries=10, rejoin=5)
        assert net.n_peers == 60
        for p in range(60):
            assert net.ring_name_of(p, 2) == before[p]

    def test_population_bounded(self):
        system = FileSharingSystem(make_hieras(n=30, seed=10), catalog_size=50, seed=11)
        for _ in range(10):
            system.run_round(queries=5, fail=10)  # capped: never below 4 peers
        assert len(system.online_peers) >= 4

    def test_history_and_summary(self):
        system = FileSharingSystem(make_chord(n=40, seed=12), catalog_size=50, seed=13)
        with pytest.raises(ValueError):
            system.summary()
        system.run(3, queries_per_round=20)
        assert len(system.history) == 3
        assert system.summary()["rounds"] == 3.0
