"""Tests for the GT-ITM Transit-Stub generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import ROUTER_STUB, ROUTER_TRANSIT
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


class TestParams:
    def test_router_count_formula(self):
        p = TransitStubParams(
            n_transit_domains=2,
            transit_nodes_per_domain=3,
            stubs_per_transit_node=4,
            stub_domain_size=5,
        )
        assert p.n_transit_routers == 6
        assert p.n_stub_domains == 24
        assert p.n_routers == 6 + 24 * 5

    def test_for_size_close_to_target(self):
        for target in (320, 1000, 2500, 5000, 10000):
            p = TransitStubParams.for_size(target)
            assert abs(p.n_routers - target) / target < 0.25

    def test_for_size_respects_overrides(self):
        p = TransitStubParams.for_size(1000, n_transit_domains=3)
        assert p.n_transit_domains == 3

    def test_for_size_steps_with_size(self):
        # Paper §4.2: transit configuration changes with network size.
        small = TransitStubParams.for_size(1000)
        large = TransitStubParams.for_size(9000)
        assert large.n_transit_domains > small.n_transit_domains

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TransitStubParams(n_transit_domains=0)
        with pytest.raises(ValueError):
            TransitStubParams(intra_stub_delay=0)
        with pytest.raises(ValueError):
            TransitStubParams(stub_edge_prob=1.5)
        with pytest.raises(ValueError):
            TransitStubParams.for_size(8)


class TestStructure:
    def test_connected(self, small_topology):
        assert small_topology.is_connected()

    def test_router_kinds(self, small_topology):
        p = small_topology.params
        assert (small_topology.kind == ROUTER_TRANSIT).sum() == p.n_transit_routers
        assert (small_topology.kind == ROUTER_STUB).sum() == (
            small_topology.n_routers - p.n_transit_routers
        )

    def test_transit_first_layout(self, small_topology):
        n_transit = small_topology.params.n_transit_routers
        assert np.all(small_topology.kind[:n_transit] == ROUTER_TRANSIT)
        assert np.all(small_topology.kind[n_transit:] == ROUTER_STUB)

    def test_stub_domains_partition_stub_routers(self, small_topology):
        dom = small_topology.stub_domain_of
        assert np.all(dom[small_topology.stub_routers] >= 0)
        assert np.all(dom[small_topology.transit_routers] == -1)
        sizes = np.bincount(dom[dom >= 0])
        assert np.all(sizes == small_topology.params.stub_domain_size)

    def test_single_uplink_per_stub_domain(self, small_topology):
        """Exactly one stub-transit edge per stub domain (the latency
        model's correctness precondition)."""
        topo = small_topology
        uplinks = {}
        for (u, v), d in zip(topo.edges, topo.delays):
            ku, kv = topo.kind[u], topo.kind[v]
            if ku != kv:  # stub<->transit edge
                stub_router = u if ku == ROUTER_STUB else v
                dom = int(topo.stub_domain_of[stub_router])
                uplinks[dom] = uplinks.get(dom, 0) + 1
                assert d == topo.params.stub_transit_delay
        assert len(uplinks) == topo.n_stub_domains
        assert all(count == 1 for count in uplinks.values())

    def test_delay_classes(self, small_topology):
        """Every link carries exactly its tier's paper delay (§4.1)."""
        topo = small_topology
        p = topo.params
        for (u, v), d in zip(topo.edges, topo.delays):
            ku, kv = topo.kind[u], topo.kind[v]
            if ku == ROUTER_TRANSIT and kv == ROUTER_TRANSIT:
                assert d == p.intra_transit_delay
            elif ku == ROUTER_STUB and kv == ROUTER_STUB:
                assert d == p.intra_stub_delay
                assert topo.stub_domain_of[u] == topo.stub_domain_of[v]
            else:
                assert d == p.stub_transit_delay

    def test_border_and_gateway_consistency(self, small_topology):
        topo = small_topology
        for dom in range(topo.n_stub_domains):
            border = int(topo.border_router_of_domain[dom])
            assert topo.stub_domain_of[border] == dom
            gw = int(topo.gateway_of_domain[dom])
            assert topo.kind[gw] == ROUTER_TRANSIT

    def test_local_index_within_domain(self, small_topology):
        topo = small_topology
        for dom in range(min(topo.n_stub_domains, 5)):
            members = topo.routers_of_domain(dom)
            assert sorted(topo.local_index[members].tolist()) == list(
                range(len(members))
            )

    def test_deterministic(self):
        a = generate_transit_stub(TransitStubParams.for_size(320), seed=3)
        b = generate_transit_stub(TransitStubParams.for_size(320), seed=3)
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_array_equal(a.delays, b.delays)

    def test_seed_changes_graph(self):
        a = generate_transit_stub(TransitStubParams.for_size(320), seed=3)
        b = generate_transit_stub(TransitStubParams.for_size(320), seed=4)
        assert a.n_edges != b.n_edges or not np.array_equal(a.edges, b.edges)

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_generated_always_connected(self, domains, per_domain, stubs, size, seed):
        params = TransitStubParams(
            n_transit_domains=domains,
            transit_nodes_per_domain=per_domain,
            stubs_per_transit_node=stubs,
            stub_domain_size=size,
        )
        topo = generate_transit_stub(params, seed=seed)
        assert topo.n_routers == params.n_routers
        assert topo.is_connected()


class TestTopologyBase:
    def test_degree_sums_to_twice_edges(self, small_topology):
        assert small_topology.degree().sum() == 2 * small_topology.n_edges

    def test_shortest_delays_diagonal_zero(self, small_topology):
        d = small_topology.shortest_delays([0, 5])
        assert d[0, 0] == 0.0
        assert d[1, 5] == 0.0

    def test_validation_rejects_bad_edges(self):
        from repro.topology.base import Topology

        with pytest.raises(ValueError):
            Topology(
                n_routers=2,
                edges=np.asarray([[0, 5]]),
                delays=np.asarray([1.0]),
                kind=np.zeros(2, dtype=np.uint8),
            )
        with pytest.raises(ValueError):
            Topology(
                n_routers=2,
                edges=np.asarray([[0, 1]]),
                delays=np.asarray([0.0]),
                kind=np.zeros(2, dtype=np.uint8),
            )
