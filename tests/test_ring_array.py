"""Tests for SortedRing — the routing primitive under everything."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.ring_array import SortedRing
from repro.util.ids import IdSpace
from repro.util.intervals import clockwise_distance, in_interval


def make_ring(ids, bits=8):
    ids = sorted(set(ids))
    return SortedRing(
        IdSpace(bits=bits),
        np.asarray(ids, dtype=np.uint64),
        np.arange(len(ids), dtype=np.int64),
    )


def brute_force_owner(ids, key, size):
    """Reference implementation: first member at or clockwise-after key."""
    return min(ids, key=lambda m: clockwise_distance(key, m, size) and (size - clockwise_distance(m, key, size)))


def owner_by_definition(ids, key, size):
    candidates = sorted(ids, key=lambda m: clockwise_distance(key, m, size))
    return candidates[0]


class TestBasics:
    def test_len_and_contains(self):
        ring = make_ring([10, 20, 30])
        assert len(ring) == 3
        assert 20 in ring and 25 not in ring

    def test_pos_of_id(self):
        ring = make_ring([10, 20, 30])
        assert ring.pos_of_id(20) == 1
        with pytest.raises(KeyError):
            ring.pos_of_id(21)

    def test_successor_pos(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor_pos(15) == 1
        assert ring.successor_pos(20) == 1  # exact hit owns itself
        assert ring.successor_pos(31) == 0  # wraps
        assert ring.successor_pos(5) == 0

    def test_neighbour_positions(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor_of_pos(2) == 0
        assert ring.predecessor_of_pos(0) == 2

    def test_requires_sorted_unique(self):
        space = IdSpace(bits=8)
        with pytest.raises(ValueError):
            SortedRing(space, np.asarray([5, 5], dtype=np.uint64), np.asarray([0, 1]))
        with pytest.raises(ValueError):
            SortedRing(space, np.asarray([7, 3], dtype=np.uint64), np.asarray([0, 1]))

    def test_arc_members(self):
        ring = make_ring([10, 20, 30, 40])
        assert ring.arc_members(10, 30).tolist() == [1, 2]
        assert set(ring.arc_members(35, 15).tolist()) == {3, 0}

    def test_successor_list(self):
        ring = make_ring([10, 20, 30, 40])
        assert ring.successor_list(3, 2) == [0, 1]
        assert ring.successor_list(0, 10) == [1, 2, 3]  # capped at n-1


ids_strategy = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=24, unique=True
)
key_strategy = st.integers(min_value=0, max_value=255)


class TestGreedyRouting:
    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=150, deadline=None)
    def test_route_reaches_owner(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        path = ring.greedy_route(start, key)
        assert path[0] == start
        assert path[-1] == ring.successor_pos(key)

    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=150, deadline=None)
    def test_distance_strictly_decreases(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        path = ring.greedy_route(start, key)
        size = 256
        dists = [clockwise_distance(int(ring.ids[p]), key, size) for p in path[:-1]]
        # Before reaching the owner, every hop strictly reduces the
        # clockwise distance to the key (Chord's progress invariant).
        assert all(a > b for a, b in zip(dists, dists[1:])) or len(dists) <= 1

    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_hop_bound_logarithmic(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        path = ring.greedy_route(start, key)
        # Bits of the space plus the final hop bound the route length.
        assert len(path) - 1 <= 8 + 1

    def test_single_member_routes_to_self(self):
        ring = make_ring([42])
        assert ring.greedy_route(0, 200) == [0]

    def test_owner_start_is_zero_hops(self):
        ring = make_ring([10, 20, 30])
        assert ring.greedy_route(1, 15) == [1]

    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_succ_list_shortcut_preserves_owner(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        plain = ring.greedy_route(start, key)
        fast = ring.greedy_route(start, key, succ_list_r=4)
        assert fast[-1] == plain[-1]
        assert len(fast) <= len(plain)


class TestPredecessorRouting:
    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=150, deadline=None)
    def test_stops_at_predecessor(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        path = ring.predecessor_route(start, key)
        end_id = int(ring.ids[path[-1]])
        size = 256
        if len(ring) == 1:
            assert path == [start]
        elif start == ring.successor_pos(key):
            # Destination check: the start already owns the key.
            assert path == [start]
        elif end_id == key:
            pass  # landed exactly on the key's node
        else:
            succ = int(ring.ids[ring.successor_of_pos(path[-1])])
            assert in_interval(key, end_id, succ, size)

    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_predecessor_route_never_overshoots(self, ids, key, start_idx):
        """No visited node (after the start) sits 'past' the key: its
        clockwise distance to the key never exceeds the previous one."""
        ring = make_ring(ids)
        start = start_idx % len(ring)
        path = ring.predecessor_route(start, key)
        size = 256
        dists = [clockwise_distance(int(ring.ids[p]), key, size) for p in path]
        assert all(a >= b for a, b in zip(dists, dists[1:]))

    @given(ids_strategy, key_strategy, st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_one_hop_shorter_than_greedy(self, ids, key, start_idx):
        ring = make_ring(ids)
        start = start_idx % len(ring)
        greedy = ring.greedy_route(start, key)
        pred = ring.predecessor_route(start, key)
        assert len(pred) <= len(greedy)
        # Completing the predecessor route with the final hop reaches
        # the same owner the greedy route found.
        if int(ring.ids[pred[-1]]) != key % 256:
            nxt = ring.successor_of_pos(pred[-1])
            assert nxt == greedy[-1] or pred[-1] == greedy[-1]


class TestFingerTable:
    def test_finger_entries_are_ring_successors(self):
        ring = make_ring([10, 50, 90, 200])
        table = ring.finger_table(0)
        assert len(table) == 8
        for entry in table:
            assert entry.node_id == int(ring.ids[ring.successor_pos(entry.start)])

    def test_finger_starts_double(self):
        ring = make_ring([10, 50, 90, 200])
        table = ring.finger_table(1)
        starts = [e.start for e in table]
        assert starts == [(50 + 2**i) % 256 for i in range(8)]

    def test_paper_table2_layer1_row(self):
        """Node 121's layer-1 finger for start 122 is node 124 in the
        paper; with the paper's visible ids we reproduce the successor
        choices of Table 2's layer-1 column."""
        visible = [121, 124, 131, 139, 143, 158, 181, 192, 212, 241, 245, 253]
        ring = make_ring(visible)
        table = ring.finger_table(ring.pos_of_id(121))
        by_start = {e.start: e.node_id for e in table}
        assert by_start[122] == 124
        assert by_start[125] == 131
        assert by_start[137] == 139
        assert by_start[153] == 158
        assert by_start[185] == 192
        assert by_start[249] == 253


class TestEdgeGeometry:
    """Wraparound and degenerate-ring corners the batch engine leans on."""

    def test_arc_members_wraps_past_zero(self):
        ring = make_ring([10, 20, 200, 250])
        # (240, 15] crosses the origin: takes 250 then wraps to 10.
        assert ring.arc_members(240, 15).tolist() == [3, 0]
        # (250, 10] is exactly the wrap gap with one member.
        assert ring.arc_members(250, 10).tolist() == [0]

    def test_arc_members_full_circle_and_empty(self):
        ring = make_ring([10, 20, 200, 250])
        # (x, x] clockwise covers the whole ring.
        assert sorted(ring.arc_members(20, 20).tolist()) == [0, 1, 2, 3]
        # An arc strictly between two members holds nobody.
        assert ring.arc_members(21, 199).tolist() == []
        # Half-open: lo excluded, hi included.
        assert ring.arc_members(10, 20).tolist() == [1]

    def test_arc_members_reduces_args_mod_size(self):
        ring = make_ring([10, 20, 200, 250])
        assert ring.arc_members(240 + 256, 15 + 512).tolist() == [3, 0]

    def test_successor_list_caps_at_ring_size(self):
        ring = make_ring([10, 20, 30])
        for r in (2, 3, 7, 1000):
            got = ring.successor_list(0, r)
            assert got == [1, 2][: min(r, 2)]
        assert ring.successor_list(2, 1000) == [0, 1]  # wraps, excludes self

    def test_single_member_ring(self):
        ring = make_ring([42])
        assert ring.successor_pos(0) == 0
        assert ring.successor_pos(42) == 0
        assert ring.successor_of_pos(0) == 0
        assert ring.predecessor_of_pos(0) == 0
        assert ring.successor_list(0, 5) == []
        # Every key routes to the sole member in zero hops beyond start.
        for key in (0, 41, 42, 43, 255):
            assert ring.greedy_route(0, key) == [0]
            assert ring.next_hop(0, key) == 0
        assert sorted(ring.arc_members(42, 42).tolist()) == [0]

    def test_key_equal_to_member_id(self):
        ring = make_ring([10, 20, 30, 40])
        # Exact hit owns itself: distance 0, no successor handoff.
        assert ring.successor_pos(30) == 2
        assert ring.next_hop(2, 30) == 2
        path = ring.greedy_route(0, 30)
        assert path[-1] == 2
        # Predecessor routing stops strictly before the exact owner
        # unless the start already owns the key.
        assert ring.predecessor_route(2, 30) == [2]

    def test_two_member_ring_routes_both_ways(self):
        ring = make_ring([0, 128])
        assert ring.greedy_route(0, 128) == [0, 1]
        assert ring.greedy_route(1, 128) == [1]
        assert ring.greedy_route(1, 1) == [1]  # successor of 1 is 128
        assert ring.greedy_route(1, 0) == [1, 0]
        assert ring.next_hop(0, 200) == 1
