"""Tests for the quick_network facade."""

import pytest

from repro import NetworkBundle, quick_network


@pytest.fixture(scope="module")
def bundle():
    return quick_network(n_peers=96, n_landmarks=4, depth=2, seed=5)


class TestQuickNetwork:
    def test_bundle_type_and_fields(self, bundle):
        assert isinstance(bundle, NetworkBundle)
        assert bundle.hieras.n_peers == 96
        assert bundle.chord.n_peers == 96
        assert bundle.attachment.n_landmarks == 4
        assert bundle.topology.is_connected()

    def test_route_and_route_chord_agree(self, bundle):
        for key in (0, 12345, 2**31):
            assert bundle.route(0, key).owner == bundle.route_chord(0, key).owner

    def test_deterministic(self):
        a = quick_network(n_peers=64, seed=9)
        b = quick_network(n_peers=64, seed=9)
        ra = a.route(3, 777)
        rb = b.route(3, 777)
        assert ra.path == rb.path
        assert ra.latency_ms == rb.latency_ms

    def test_seed_changes_network(self):
        a = quick_network(n_peers=64, seed=1)
        b = quick_network(n_peers=64, seed=2)
        assert a.hieras.id_of(0) != b.hieras.id_of(0) or a.route(0, 5).path != b.route(0, 5).path

    def test_depth_parameter(self):
        bundle = quick_network(n_peers=64, depth=3, seed=3)
        assert bundle.hieras.depth == 3
        assert len(bundle.route(0, 99).hops_per_layer) == 3

    def test_latency_wiring(self, bundle):
        """The bundle's peer latency view must drive route latencies."""
        r = bundle.route(1, 424242)
        if r.hops:
            manual = sum(
                bundle.peer_latency.pair(a, b)
                for a, b in zip(r.path[:-1], r.path[1:])
            )
            assert r.latency_ms == pytest.approx(manual)


class TestModelParameter:
    def test_brite_model(self):
        bundle = quick_network(n_peers=80, seed=2, model="brite")
        assert bundle.topology.name == "brite"
        r = bundle.route(0, 555)
        assert r.owner == bundle.route_chord(0, 555).owner

    def test_inet_floor_enforced(self):
        with pytest.raises(ValueError, match="3000"):
            quick_network(n_peers=100, model="inet")

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            quick_network(n_peers=64, model="grid")
