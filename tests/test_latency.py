"""Tests for latency models, including exactness cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.brite import BriteParams, generate_brite
from repro.topology.latency import (
    APSPLatencyModel,
    CoordinateLatencyModel,
    NoisyLatencyModel,
    TransitStubLatencyModel,
    latency_model_for,
)
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


class TestAPSP:
    @pytest.fixture(scope="class")
    def model_and_topo(self):
        topo = generate_brite(BriteParams(n_nodes=200), seed=1)
        return APSPLatencyModel(topo), topo

    def test_matches_dijkstra(self, model_and_topo, rng):
        model, topo = model_and_topo
        sources = rng.integers(0, topo.n_routers, 4)
        ground = topo.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = rng.integers(0, topo.n_routers, 100)
            got = model.pairs(np.full(100, s), targets)
            np.testing.assert_allclose(got, np.round(ground[i][targets]))

    def test_symmetric(self, model_and_topo, rng):
        model, topo = model_and_topo
        us = rng.integers(0, topo.n_routers, 200)
        vs = rng.integers(0, topo.n_routers, 200)
        np.testing.assert_array_equal(model.pairs(us, vs), model.pairs(vs, us))

    def test_diagonal_zero(self, model_and_topo):
        model, topo = model_and_topo
        idx = np.arange(topo.n_routers)
        assert model.pairs(idx, idx).max() == 0.0

    def test_triangle_inequality(self, model_and_topo, rng):
        model, topo = model_and_topo
        a = rng.integers(0, topo.n_routers, 300)
        b = rng.integers(0, topo.n_routers, 300)
        c = rng.integers(0, topo.n_routers, 300)
        assert np.all(model.pairs(a, c) <= model.pairs(a, b) + model.pairs(b, c) + 1)

    def test_to_targets_row(self, model_and_topo):
        model, _ = model_and_topo
        targets = np.asarray([0, 5, 10])
        np.testing.assert_array_equal(
            model.to_targets(3, targets), model.pairs(np.full(3, 3), targets)
        )

    def test_matrix_readonly(self, model_and_topo):
        model, _ = model_and_topo
        with pytest.raises(ValueError):
            model.matrix[0, 0] = 1

    def test_chunking_equivalent(self):
        topo = generate_brite(BriteParams(n_nodes=64), seed=2)
        a = APSPLatencyModel(topo, chunk=7)
        b = APSPLatencyModel(topo, chunk=1024)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_disconnected_raises(self):
        from repro.topology.base import Topology

        topo = Topology(
            n_routers=3,
            edges=np.asarray([[0, 1]]),
            delays=np.asarray([5.0]),
            kind=np.zeros(3, dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="disconnected"):
            APSPLatencyModel(topo)


class TestTransitStubExact:
    """The hierarchical model must equal Dijkstra on every instance."""

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_equals_dijkstra_random_instances(self, seed):
        params = TransitStubParams(
            n_transit_domains=2,
            transit_nodes_per_domain=2,
            stubs_per_transit_node=3,
            stub_domain_size=5,
        )
        topo = generate_transit_stub(params, seed=seed)
        model = TransitStubLatencyModel(topo)
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, topo.n_routers, 3)
        ground = topo.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = np.arange(topo.n_routers)
            got = model.pairs(np.full(topo.n_routers, s), targets)
            np.testing.assert_allclose(got, ground[i])

    def test_equals_dijkstra_larger(self, small_topology, small_latency, rng):
        sources = rng.integers(0, small_topology.n_routers, 4)
        ground = small_topology.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = rng.integers(0, small_topology.n_routers, 150)
            got = small_latency.pairs(np.full(150, s), targets)
            np.testing.assert_allclose(got, ground[i][targets])

    def test_pair_scalar(self, small_latency):
        assert small_latency.pair(3, 3) == 0.0
        assert small_latency.pair(0, 1) == small_latency.pair(1, 0)

    def test_requires_transit_stub_topology(self):
        topo = generate_brite(BriteParams(n_nodes=50), seed=1)
        with pytest.raises(ValueError):
            TransitStubLatencyModel(topo)  # type: ignore[arg-type]


class TestModelSelection:
    def test_ts_gets_exact_model(self, small_topology):
        assert isinstance(latency_model_for(small_topology), TransitStubLatencyModel)

    def test_general_gets_apsp(self):
        topo = generate_brite(BriteParams(n_nodes=50), seed=1)
        assert isinstance(latency_model_for(topo), APSPLatencyModel)


class TestCoordinateModel:
    def test_euclidean(self):
        coords = np.asarray([[0.0, 0.0], [3.0, 4.0]])
        model = CoordinateLatencyModel(coords)
        assert model.pair(0, 1) == pytest.approx(5.0)

    def test_scale(self):
        coords = np.asarray([[0.0, 0.0], [1.0, 0.0]])
        assert CoordinateLatencyModel(coords, scale=10).pair(0, 1) == pytest.approx(10.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CoordinateLatencyModel(np.zeros((3, 3)))


class TestNoisyModel:
    def test_zero_sigma_passthrough(self, small_latency, rng):
        noisy = NoisyLatencyModel(small_latency, sigma=0.0)
        us = rng.integers(0, 300, 50)
        vs = rng.integers(0, 300, 50)
        np.testing.assert_array_equal(noisy.pairs(us, vs), small_latency.pairs(us, vs))

    def test_noise_is_multiplicative_and_unbiased_ish(self, small_latency, rng):
        noisy = NoisyLatencyModel(small_latency, sigma=0.2, seed=1)
        us = rng.integers(0, 300, 2000)
        vs = rng.integers(0, 300, 2000)
        clean = small_latency.pairs(us, vs)
        mask = clean > 0
        ratio = noisy.pairs(us, vs)[mask] / clean[mask]
        assert 0.9 < np.median(ratio) < 1.1
        assert ratio.std() > 0.05

    def test_rejects_negative_sigma(self, small_latency):
        with pytest.raises(ValueError):
            NoisyLatencyModel(small_latency, sigma=-0.1)
