"""Tests for latency models, including exactness cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.brite import BriteParams, generate_brite
from repro.topology.latency import (
    APSPLatencyModel,
    CoordinateLatencyModel,
    NoisyLatencyModel,
    StreamingAPSPLatencyModel,
    StreamingTransitStubLatencyModel,
    TransitStubLatencyModel,
    latency_model_for,
)
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


class TestAPSP:
    @pytest.fixture(scope="class")
    def model_and_topo(self):
        topo = generate_brite(BriteParams(n_nodes=200), seed=1)
        return APSPLatencyModel(topo), topo

    def test_matches_dijkstra(self, model_and_topo, rng):
        model, topo = model_and_topo
        sources = rng.integers(0, topo.n_routers, 4)
        ground = topo.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = rng.integers(0, topo.n_routers, 100)
            got = model.pairs(np.full(100, s), targets)
            np.testing.assert_allclose(got, np.round(ground[i][targets]))

    def test_symmetric(self, model_and_topo, rng):
        model, topo = model_and_topo
        us = rng.integers(0, topo.n_routers, 200)
        vs = rng.integers(0, topo.n_routers, 200)
        np.testing.assert_array_equal(model.pairs(us, vs), model.pairs(vs, us))

    def test_diagonal_zero(self, model_and_topo):
        model, topo = model_and_topo
        idx = np.arange(topo.n_routers)
        assert model.pairs(idx, idx).max() == 0.0

    def test_triangle_inequality(self, model_and_topo, rng):
        model, topo = model_and_topo
        a = rng.integers(0, topo.n_routers, 300)
        b = rng.integers(0, topo.n_routers, 300)
        c = rng.integers(0, topo.n_routers, 300)
        assert np.all(model.pairs(a, c) <= model.pairs(a, b) + model.pairs(b, c) + 1)

    def test_to_targets_row(self, model_and_topo):
        model, _ = model_and_topo
        targets = np.asarray([0, 5, 10])
        np.testing.assert_array_equal(
            model.to_targets(3, targets), model.pairs(np.full(3, 3), targets)
        )

    def test_matrix_readonly(self, model_and_topo):
        model, _ = model_and_topo
        with pytest.raises(ValueError):
            model.matrix[0, 0] = 1

    def test_chunking_equivalent(self):
        topo = generate_brite(BriteParams(n_nodes=64), seed=2)
        a = APSPLatencyModel(topo, chunk=7)
        b = APSPLatencyModel(topo, chunk=1024)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_disconnected_raises(self):
        from repro.topology.base import Topology

        topo = Topology(
            n_routers=3,
            edges=np.asarray([[0, 1]]),
            delays=np.asarray([5.0]),
            kind=np.zeros(3, dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="disconnected"):
            APSPLatencyModel(topo)


class TestTransitStubExact:
    """The hierarchical model must equal Dijkstra on every instance."""

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_equals_dijkstra_random_instances(self, seed):
        params = TransitStubParams(
            n_transit_domains=2,
            transit_nodes_per_domain=2,
            stubs_per_transit_node=3,
            stub_domain_size=5,
        )
        topo = generate_transit_stub(params, seed=seed)
        model = TransitStubLatencyModel(topo)
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, topo.n_routers, 3)
        ground = topo.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = np.arange(topo.n_routers)
            got = model.pairs(np.full(topo.n_routers, s), targets)
            np.testing.assert_allclose(got, ground[i])

    def test_equals_dijkstra_larger(self, small_topology, small_latency, rng):
        sources = rng.integers(0, small_topology.n_routers, 4)
        ground = small_topology.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = rng.integers(0, small_topology.n_routers, 150)
            got = small_latency.pairs(np.full(150, s), targets)
            np.testing.assert_allclose(got, ground[i][targets])

    def test_pair_scalar(self, small_latency):
        assert small_latency.pair(3, 3) == 0.0
        assert small_latency.pair(0, 1) == small_latency.pair(1, 0)

    def test_requires_transit_stub_topology(self):
        topo = generate_brite(BriteParams(n_nodes=50), seed=1)
        with pytest.raises(ValueError):
            TransitStubLatencyModel(topo)  # type: ignore[arg-type]


class TestModelSelection:
    def test_ts_gets_exact_model(self, small_topology):
        assert isinstance(latency_model_for(small_topology), TransitStubLatencyModel)

    def test_general_gets_apsp(self):
        topo = generate_brite(BriteParams(n_nodes=50), seed=1)
        assert isinstance(latency_model_for(topo), APSPLatencyModel)


class TestCoordinateModel:
    def test_euclidean(self):
        coords = np.asarray([[0.0, 0.0], [3.0, 4.0]])
        model = CoordinateLatencyModel(coords)
        assert model.pair(0, 1) == pytest.approx(5.0)

    def test_scale(self):
        coords = np.asarray([[0.0, 0.0], [1.0, 0.0]])
        assert CoordinateLatencyModel(coords, scale=10).pair(0, 1) == pytest.approx(10.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CoordinateLatencyModel(np.zeros((3, 3)))


class TestNoisyModel:
    def test_zero_sigma_passthrough(self, small_latency, rng):
        noisy = NoisyLatencyModel(small_latency, sigma=0.0)
        us = rng.integers(0, 300, 50)
        vs = rng.integers(0, 300, 50)
        np.testing.assert_array_equal(noisy.pairs(us, vs), small_latency.pairs(us, vs))

    def test_noise_is_multiplicative_and_unbiased_ish(self, small_latency, rng):
        noisy = NoisyLatencyModel(small_latency, sigma=0.2, seed=1)
        us = rng.integers(0, 300, 2000)
        vs = rng.integers(0, 300, 2000)
        clean = small_latency.pairs(us, vs)
        mask = clean > 0
        ratio = noisy.pairs(us, vs)[mask] / clean[mask]
        assert 0.9 < np.median(ratio) < 1.1
        assert ratio.std() > 0.05

    def test_rejects_negative_sigma(self, small_latency):
        with pytest.raises(ValueError):
            NoisyLatencyModel(small_latency, sigma=-0.1)


class TestStreamingAPSP:
    """Streaming row-block APSP ≡ the eager matrix, bit for bit."""

    @pytest.fixture(scope="class")
    def pair_of_models(self):
        topo = generate_brite(BriteParams(n_nodes=220), seed=3)
        return APSPLatencyModel(topo), StreamingAPSPLatencyModel(topo, chunk=64), topo

    def test_pairs_bit_identical(self, pair_of_models, rng):
        eager, streaming, topo = pair_of_models
        us = rng.integers(0, topo.n_routers, 500)
        vs = rng.integers(0, topo.n_routers, 500)
        np.testing.assert_array_equal(eager.pairs(us, vs), streaming.pairs(us, vs))

    def test_pair_and_to_targets_bit_identical(self, pair_of_models):
        eager, streaming, topo = pair_of_models
        assert eager.pair(1, 200) == streaming.pair(1, 200)
        targets = np.arange(0, topo.n_routers, 7)
        np.testing.assert_array_equal(
            eager.to_targets(9, targets), streaming.to_targets(9, targets)
        )

    def test_lru_evicts_and_still_agrees(self, rng):
        topo = generate_brite(BriteParams(n_nodes=150), seed=4)
        eager = APSPLatencyModel(topo)
        tiny = StreamingAPSPLatencyModel(topo, chunk=16, cache_blocks=2)
        us = rng.integers(0, topo.n_routers, 400)
        vs = rng.integers(0, topo.n_routers, 400)
        np.testing.assert_array_equal(eager.pairs(us, vs), tiny.pairs(us, vs))
        assert tiny.cache_misses > 2  # evictions happened, results unchanged
        hits = tiny.cache_hits
        assert tiny.pair(0, 5) == tiny.pair(0, 5)  # same block twice
        assert tiny.cache_hits > hits


class TestStreamingTransitStub:
    """Streaming per-stub blocks ≡ the eager exact decomposition."""

    @pytest.fixture(scope="class")
    def pair_of_models(self, small_topology):
        return (
            TransitStubLatencyModel(small_topology),
            StreamingTransitStubLatencyModel(small_topology, cache_blocks=4),
            small_topology,
        )

    def test_pairs_bit_identical(self, pair_of_models, rng):
        eager, streaming, topo = pair_of_models
        us = rng.integers(0, topo.n_routers, 600)
        vs = rng.integers(0, topo.n_routers, 600)
        np.testing.assert_array_equal(eager.pairs(us, vs), streaming.pairs(us, vs))

    def test_same_domain_pairs_bit_identical(self, pair_of_models):
        """Intra-stub queries take the on-demand Dijkstra block path."""
        eager, streaming, topo = pair_of_models
        dom = topo.stub_domain_of
        for target in range(3):
            members = np.flatnonzero(dom == target)
            us = np.repeat(members, len(members))
            vs = np.tile(members, len(members))
            np.testing.assert_array_equal(eager.pairs(us, vs), streaming.pairs(us, vs))

    def test_to_targets_bit_identical(self, pair_of_models):
        eager, streaming, topo = pair_of_models
        targets = np.arange(0, topo.n_routers, 5)
        np.testing.assert_array_equal(
            eager.to_targets(2, targets), streaming.to_targets(2, targets)
        )


class TestStreamingDispatch:
    def test_zero_threshold_streams(self, small_topology):
        model = latency_model_for(small_topology, streaming_threshold_bytes=0)
        assert isinstance(model, StreamingTransitStubLatencyModel)
        topo = generate_brite(BriteParams(n_nodes=50), seed=1)
        assert isinstance(
            latency_model_for(topo, streaming_threshold_bytes=0),
            StreamingAPSPLatencyModel,
        )

    def test_default_threshold_keeps_small_models_eager(self, small_topology):
        assert isinstance(latency_model_for(small_topology), TransitStubLatencyModel)

    def test_cache_budget_sizes_lru(self, small_topology):
        """cache_blocks is derived from streaming_cache_bytes so the
        resident-block ceiling is a byte budget, not a fixed count."""
        block_bytes = small_topology.params.stub_domain_size**2 * 4
        model = latency_model_for(
            small_topology,
            streaming_threshold_bytes=0,
            streaming_cache_bytes=200 * block_bytes,
        )
        assert model.cache_blocks == max(64, 200)
        topo = generate_brite(BriteParams(n_nodes=64), seed=2)
        apsp = latency_model_for(
            topo, streaming_threshold_bytes=0, streaming_cache_bytes=0
        )
        assert apsp.cache_blocks == 4  # floor


class TestNoisyScalarAndTargets:
    def test_pair_accepts_scalars(self, small_latency):
        noisy = NoisyLatencyModel(small_latency, sigma=0.2, seed=5)
        value = noisy.pair(3, 17)
        assert isinstance(value, float)
        assert value >= 0.0

    def test_to_targets_matches_pairs_draws(self, small_latency):
        """The to_targets override must consume the RNG exactly like the
        equivalent pairs() call (same draw count, same order)."""
        targets = np.arange(0, 300, 3)
        a = NoisyLatencyModel(small_latency, sigma=0.3, seed=8)
        b = NoisyLatencyModel(small_latency, sigma=0.3, seed=8)
        np.testing.assert_array_equal(
            a.to_targets(4, targets),
            b.pairs(np.full(len(targets), 4), targets),
        )
