"""Keep the README honest: its code fences must execute."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_fences(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_mentions_paper():
    text = README.read_text(encoding="utf-8")
    assert "HIERAS" in text
    assert "ICPP 2003" in text


def test_readme_quickstart_executes():
    text = README.read_text(encoding="utf-8")
    fences = python_fences(text)
    assert fences, "README must contain a python quickstart fence"
    namespace: dict = {}
    exec(compile(fences[0], "<README quickstart>", "exec"), namespace)  # noqa: S102
    assert "bundle" in namespace


def test_readme_references_real_files():
    text = README.read_text(encoding="utf-8")
    root = README.parent
    for rel in ("EXPERIMENTS.md", "DESIGN.md"):
        assert rel in text
        assert (root / rel).exists()
    for example in re.findall(r"examples/(\w+)\.py", text):
        assert (root / "examples" / f"{example}.py").exists(), example
