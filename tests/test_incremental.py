"""Incremental membership ≡ full rebuild, bit for bit, on both stacks.

The scale work replaced rebuild-per-wave with ``SortedRing.splice``
waves that touch only affected rings.  The contract pinned here:

* after any interleaving of remove/revive/add waves, every ring array
  (ids **and** peers), every ring name list, every finger table, and
  every route (owner, path, exact float latency) is identical to a
  network that did a from-scratch rebuild after each wave;
* waves never increment ``rebuild_count`` — the counters prove the
  splice path ran (O(wave) work, not O(N));
* rings a wave does not touch remain the *same objects* (identity, the
  strongest no-work evidence there is);
* rejected batches leave the counters and the overlay untouched.
"""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.engine import batch_route
from repro.topology.latency import CoordinateLatencyModel
from repro.util.ids import IdSpace


def build_pair(n=120, depth=2, seed=5, bits=16, landmarks=4, headroom=0):
    """A (chord, hieras) pair over a synthetic planar deployment.

    ``headroom`` adds latency coordinates beyond the initial ``n`` so
    join waves can route (peer indices grow past the founding set).
    """
    rng = np.random.default_rng(seed)
    space = IdSpace(bits)
    ids = space.sample_unique_ids(n, rng)
    distances = rng.uniform(0, 300, size=(n, landmarks))
    orders = BinningScheme.default_for_depth(max(depth, 2)).orders(distances)
    model = CoordinateLatencyModel(rng.uniform(0, 500, size=(n + headroom, 2)))
    chord = ChordNetwork(space, ids, latency=model)
    hieras = HierasNetwork(
        space, ids, latency=model, landmark_orders=orders, depth=depth
    )
    return chord, hieras


def assert_same_state(a, b):
    """Every ring array and name of ``a`` equals ``b``'s, exactly."""
    if isinstance(a, ChordNetwork):
        assert np.array_equal(a.ring.ids, b.ring.ids)
        assert np.array_equal(a.ring.peers, b.ring.peers)
        return
    assert np.array_equal(a.global_ring.ids, b.global_ring.ids)
    assert np.array_equal(a.global_ring.peers, b.global_ring.peers)
    for layer in range(2, a.depth + 1):
        ra, rb = a.rings_at_layer(layer), b.rings_at_layer(layer)
        assert sorted(ra) == sorted(rb)
        for name in ra:
            assert np.array_equal(ra[name].ids, rb[name].ids), name
            assert np.array_equal(ra[name].peers, rb[name].peers), name


def assert_same_routes(a, b, *, seed, n_requests=40):
    """Identical owners, paths and exact float latencies on both nets."""
    rng = np.random.default_rng(seed)
    alive = [p for p in range(a.n_peers) if a.is_alive(p)]
    sources = np.asarray(rng.choice(alive, size=n_requests), dtype=np.int64)
    keys = rng.integers(0, a.space.size, size=n_requests, dtype=np.uint64)
    for src, key in zip(sources[:8], keys[:8]):
        ra, rb = a.route(int(src), int(key)), b.route(int(src), int(key))
        assert ra.owner == rb.owner
        assert ra.path == rb.path
        assert ra.latency_ms == rb.latency_ms  # exact, not approx
    batch_a = batch_route(a, sources, keys, paths=True)
    batch_b = batch_route(b, sources, keys, paths=True)
    assert np.array_equal(batch_a.owner, batch_b.owner)
    assert np.array_equal(batch_a.hops, batch_b.hops)
    assert np.array_equal(batch_a.latency_ms, batch_b.latency_ms)
    for lane in range(n_requests):
        assert batch_a.path(lane) == batch_b.path(lane)


def assert_same_fingers(a, b, *, seed, sample=6):
    rng = np.random.default_rng(seed)
    alive = [p for p in range(a.n_peers) if a.is_alive(p)]
    depth = getattr(a, "depth", 1)
    for peer in rng.choice(alive, size=min(sample, len(alive)), replace=False):
        if isinstance(a, ChordNetwork):
            ta = [(e.start, e.node_id) for e in a.finger_table(int(peer))]
            tb = [(e.start, e.node_id) for e in b.finger_table(int(peer))]
            assert ta == tb
        else:
            for layer in range(1, depth + 1):
                ta = [(e.start, e.node_id) for e in a.finger_table(int(peer), layer)]
                tb = [(e.start, e.node_id) for e in b.finger_table(int(peer), layer)]
                assert ta == tb


class TestRandomizedInterleavings:
    """Incremental net vs a twin that rebuilds after every wave."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("depth", [2, 3])
    def test_waves_match_rebuild_twin(self, seed, depth):
        chord_a, hieras_a = build_pair(n=90, depth=depth, seed=40 + seed)
        chord_b, hieras_b = build_pair(n=90, depth=depth, seed=40 + seed)
        rng = np.random.default_rng(1000 + seed)
        rebuilds_at_start = (chord_a.rebuild_count, hieras_a.rebuild_count)
        dead: set[int] = set()
        for wave in range(6):
            op = ["remove", "revive", "remove"][wave % 3]
            if op == "revive" and not dead:
                op = "remove"
            if op == "remove":
                alive = [p for p in range(90) if p not in dead]
                size = int(rng.integers(1, 8))
                victims = [int(v) for v in rng.choice(alive, size=size, replace=False)]
                dead.update(victims)
                chord_a.remove_peers(victims)
                hieras_a.remove_peers(victims)
                chord_b.remove_peers(victims)
                hieras_b.remove_peers(victims)
            else:
                size = int(rng.integers(1, len(dead) + 1))
                back = [int(v) for v in rng.choice(sorted(dead), size=size, replace=False)]
                dead.difference_update(back)
                chord_a.revive_peers(back)
                hieras_a.revive_peers(back)
                chord_b.revive_peers(back)
                hieras_b.revive_peers(back)
            # The twin re-derives everything from scratch; A never does.
            chord_b.rebuild()
            hieras_b.rebuild()
            assert_same_state(chord_a, chord_b)
            assert_same_state(hieras_a, hieras_b)
            assert_same_fingers(chord_a, chord_b, seed=seed * 100 + wave)
            assert_same_fingers(hieras_a, hieras_b, seed=seed * 100 + wave)
            assert_same_routes(chord_a, chord_b, seed=seed * 100 + wave)
            assert_same_routes(hieras_a, hieras_b, seed=seed * 100 + wave)
        assert chord_a.rebuild_count == rebuilds_at_start[0]
        assert hieras_a.rebuild_count == rebuilds_at_start[1]
        assert chord_a.incremental_waves == 6
        assert hieras_a.incremental_waves == 6

    def test_join_waves_match_rebuild_twin(self):
        _, a = build_pair(n=50, depth=2, seed=71, headroom=24)
        _, b = build_pair(n=50, depth=2, seed=71, headroom=24)
        rng = np.random.default_rng(7)
        pool = [
            int(v)
            for v in a.space.sample_unique_ids(400, rng)
            if int(v) not in a.global_ring
        ]
        layer2 = sorted(a.rings_at_layer(2))
        rebuilds_at_start = a.rebuild_count
        for wave in range(4):
            size = int(rng.integers(1, 6))
            fresh, pool = pool[:size], pool[size:]
            names = [[str(rng.choice(layer2))] for _ in fresh]
            assert a.add_peers(fresh, names) == b.add_peers(fresh, names)
            b.rebuild()
            assert_same_state(a, b)
            assert_same_routes(a, b, seed=500 + wave)
        assert a.rebuild_count == rebuilds_at_start

    def test_join_into_new_ring_matches_rebuild(self):
        """A joiner naming a ring that does not exist yet births it."""
        _, a = build_pair(n=40, depth=2, seed=72, headroom=4)
        _, b = build_pair(n=40, depth=2, seed=72, headroom=4)
        fresh = [
            int(v)
            for v in a.space.sample_unique_ids(200, np.random.default_rng(9))
            if int(v) not in a.global_ring
        ][:2]
        assert "3333" not in a.rings_at_layer(2)
        a.add_peers(fresh, [["3333"], ["3333"]])
        b.add_peers(fresh, [["3333"], ["3333"]])
        b.rebuild()
        assert "3333" in a.rings_at_layer(2)
        assert_same_state(a, b)
        assert_same_routes(a, b, seed=77)


class TestWaveWorkIsBounded:
    def test_untouched_rings_are_same_objects(self):
        """The O(wave) pin: a wave leaves unaffected rings untouched —
        not rebuilt-equal, but the *identical* SortedRing objects."""
        _, net = build_pair(n=150, depth=2, seed=80)
        rings = net.rings_at_layer(2)
        victim_name = net.ring_name_of(0, 2)
        before = {name: rings[name] for name in rings}
        net.remove_peers([0])
        after = net.rings_at_layer(2)
        assert after[victim_name] is not before[victim_name]
        for name in before:
            if name != victim_name and name in after:
                assert after[name] is before[name]

    def test_wave_counters(self):
        _, net = build_pair(n=100, depth=2, seed=81)
        waves = net.incremental_waves
        spliced = net.rings_spliced
        victims = [4, 9]
        touched = {net.ring_name_of(v, 2) for v in victims}
        net.remove_peers(victims)
        assert net.incremental_waves == waves + 1
        assert net.rings_spliced == spliced + len(touched)

    def test_rebuild_escape_hatch_counts(self):
        chord, hieras = build_pair(n=30, seed=82)
        for net in (chord, hieras):
            before = net.rebuild_count
            net.rebuild()
            assert net.rebuild_count == before + 1


class TestValidationParity:
    def test_rejected_wave_leaves_counters_and_state(self):
        chord, hieras = build_pair(n=30, seed=90)
        for net in (chord, hieras):
            waves = net.incremental_waves
            ring = net.ring if isinstance(net, ChordNetwork) else net.global_ring
            ids_before = ring.ids
            with pytest.raises(ValueError, match="not alive"):
                net.remove_peers([2, 2])
            assert net.incremental_waves == waves
            live_ring = net.ring if isinstance(net, ChordNetwork) else net.global_ring
            assert live_ring.ids is ids_before

    def test_publish_skips_on_unchanged_rings(self):
        _, net = build_pair(n=120, depth=2, seed=91)
        skips = net.publish_skips
        net.rebuild()  # nothing changed: every ring's publish is a skip
        assert net.publish_skips > skips
        assert net.publish_skips - skips == sum(
            len(net.rings_at_layer(layer)) for layer in range(2, net.depth + 1)
        )
