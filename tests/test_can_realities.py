"""Tests for CAN multiple realities."""

import numpy as np
import pytest

from repro.dht.can import CanNetwork
from repro.dht.can_realities import MultiRealityCan


@pytest.fixture(scope="module")
def nets():
    peers = np.arange(256)
    single = CanNetwork(peers, seed=21)
    multi = MultiRealityCan(peers, realities=3, seed=21)
    return single, multi


class TestConstruction:
    def test_reality_count(self, nets):
        _, multi = nets
        assert multi.n_realities == 3
        assert multi.n_peers == 256

    def test_realities_are_independent(self, nets):
        _, multi = nets
        a, b = multi.realities[0], multi.realities[1]
        assert not np.array_equal(a._lo, b._lo)

    def test_rejects_zero_realities(self):
        with pytest.raises(ValueError):
            MultiRealityCan(np.arange(8), realities=0)


class TestOwnership:
    def test_owners_per_reality(self, nets):
        _, multi = nets
        owners = multi.owners_of(12345)
        assert len(owners) == 3
        for can, owner in zip(multi.realities, owners):
            assert can.owner_of(12345) == owner

    def test_canonical_owner_is_reality_zero(self, nets):
        _, multi = nets
        assert multi.owner_of(999) == multi.realities[0].owner_of(999)


class TestRouting:
    def test_terminates_at_a_replica(self, nets, rng):
        _, multi = nets
        for _ in range(200):
            k = int(rng.integers(0, 2**32))
            s = int(rng.integers(0, 256))
            r = multi.route(s, k)
            assert r.owner in multi.owners_of(k)
            assert r.path[0] == s

    def test_fewer_hops_than_single_reality(self, nets, rng):
        """The CAN paper's claim: realities shorten routes."""
        single, multi = nets
        sh = mh = 0
        for _ in range(300):
            k = int(rng.integers(0, 2**32))
            s = int(rng.integers(0, 256))
            sh += single.route(s, k).hops
            mh += multi.route(s, k).hops
        assert mh < 0.9 * sh  # ~0.77x measured with 3 realities at n=256

    def test_state_cost_scales_with_realities(self, nets):
        single, multi = nets
        assert multi.neighbor_state_size(0) > single.neighbor_count(0)

    def test_single_reality_degenerates(self, rng):
        peers = np.arange(64)
        multi = MultiRealityCan(peers, realities=1, seed=3)
        single = CanNetwork(peers, seed=3 * 7919)
        for _ in range(60):
            k = int(rng.integers(0, 2**32))
            s = int(rng.integers(0, 64))
            assert multi.route(s, k).owner == single.owner_of(k)
