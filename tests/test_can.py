"""Tests for CAN and HIERAS-over-CAN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import BinningScheme
from repro.core.hieras_can import HierasCanNetwork
from repro.dht.can import (
    COORD_MAX,
    CanNetwork,
    CanParams,
    key_point,
    peer_point,
)


class TestConstruction:
    @pytest.mark.parametrize("n,d", [(1, 2), (2, 2), (33, 2), (64, 3), (100, 1)])
    def test_zones_tile_torus(self, n, d):
        net = CanNetwork(np.arange(n), params=CanParams(dimensions=d), seed=1)
        assert net.total_volume() == COORD_MAX**d

    def test_zones_disjoint(self):
        net = CanNetwork(np.arange(40), seed=2)
        pts = np.random.default_rng(0).integers(0, COORD_MAX, size=(200, 2))
        for p in pts:
            inside = np.all((net._lo <= p) & (p < net._hi), axis=1)
            assert inside.sum() == 1

    def test_deterministic(self):
        a = CanNetwork(np.arange(30), seed=3)
        b = CanNetwork(np.arange(30), seed=3)
        np.testing.assert_array_equal(a._lo, b._lo)

    def test_peer_subset(self):
        peers = np.asarray([5, 17, 99, 200])
        net = CanNetwork(peers, seed=1)
        assert net.n_peers == 4
        assert net.owner_of(12345) in peers

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CanNetwork(np.asarray([1, 1]))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            CanParams(dimensions=0)


class TestNeighbors:
    def test_symmetry(self):
        net = CanNetwork(np.arange(50), seed=4)
        for i, nbrs in enumerate(net._neighbors):
            for j in nbrs:
                assert i in net._neighbors[int(j)]

    def test_no_self_neighbor(self):
        net = CanNetwork(np.arange(50), seed=4)
        for i, nbrs in enumerate(net._neighbors):
            assert i not in nbrs

    def test_mean_neighbors_2d(self):
        net = CanNetwork(np.arange(256), params=CanParams(dimensions=2), seed=5)
        counts = [net.neighbor_count(int(p)) for p in net.peers]
        assert 3.0 <= np.mean(counts) <= 8.0  # CAN: ~2d for equal zones

    def test_singleton_has_no_neighbors(self):
        net = CanNetwork(np.asarray([7]), seed=1)
        assert net.neighbor_count(7) == 0


class TestPoints:
    def test_key_point_deterministic(self):
        np.testing.assert_array_equal(key_point(42, 2), key_point(42, 2))

    def test_peer_point_differs_from_key_point(self):
        assert not np.array_equal(peer_point(42, 2), key_point(42, 2))

    def test_points_in_range(self):
        for k in (0, 1, 2**31):
            assert key_point(k, 3).max() < COORD_MAX


class TestRouting:
    @pytest.fixture(scope="class")
    def net(self):
        return CanNetwork(np.arange(128), params=CanParams(dimensions=2), seed=6)

    def test_reaches_owner(self, net, rng):
        for _ in range(200):
            s = int(rng.integers(0, 128))
            k = int(rng.integers(0, 2**32))
            r = net.route(s, k)
            assert r.owner == net.owner_of(k)
            assert r.path[0] == s and r.path[-1] == r.owner

    def test_self_route_zero_hops(self, net):
        k = 999
        owner = net.owner_of(k)
        assert net.route(owner, k).hops == 0

    def test_hops_scale_as_sqrt(self, rng):
        hops = {}
        for n in (64, 256):
            net = CanNetwork(np.arange(n), seed=7)
            hops[n] = np.mean(
                [
                    net.route(int(rng.integers(0, n)), int(rng.integers(0, 2**32))).hops
                    for _ in range(150)
                ]
            )
        assert 1.5 < hops[256] / hops[64] < 2.6  # sqrt(4) = 2

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=63))
    @settings(max_examples=50, deadline=None)
    def test_routing_property(self, key, start):
        net = CanNetwork(np.arange(64), seed=8)
        r = net.route(start, key)
        assert r.owner == net.owner_of(key)


class TestHierasCan:
    @pytest.fixture(scope="class")
    def layered(self):
        rng = np.random.default_rng(0)
        n = 200
        distances = rng.uniform(0, 300, size=(n, 4))
        orders = BinningScheme.default_for_depth(3).orders(distances)
        flat = CanNetwork(np.arange(n), seed=9)
        layered = HierasCanNetwork(n, landmark_orders=orders, depth=2, seed=9)
        return flat, layered

    def test_same_owner_as_flat(self, layered, rng):
        flat, net = layered
        for _ in range(150):
            k = int(rng.integers(0, 2**32))
            s = int(rng.integers(0, 200))
            assert net.route(s, k).owner == net.owner_of(k)
            # Both CANs share construction seed => same global zones.
            assert net.owner_of(k) == flat.owner_of(k)

    def test_hops_per_layer(self, layered, rng):
        _, net = layered
        r = net.route(int(rng.integers(0, 200)), int(rng.integers(0, 2**32)))
        assert len(r.hops_per_layer) == 2
        assert sum(r.hops_per_layer) == r.hops

    def test_neighbor_state_grows_with_depth(self, layered):
        _, net = layered
        assert net.neighbor_state_size(0) >= net.global_can.neighbor_count(0)

    def test_depth3(self, rng):
        n = 150
        distances = np.random.default_rng(1).uniform(0, 300, size=(n, 4))
        orders = BinningScheme.default_for_depth(3).orders(distances)
        net = HierasCanNetwork(n, landmark_orders=orders, depth=3, seed=2)
        for _ in range(80):
            k = int(rng.integers(0, 2**32))
            r = net.route(int(rng.integers(0, n)), k)
            assert r.owner == net.owner_of(k)
            assert len(r.hops_per_layer) == 3

    def test_rejects_mismatched_orders(self):
        orders = BinningScheme.default_for_depth(2).orders(
            np.random.default_rng(0).uniform(0, 300, size=(10, 2))
        )
        with pytest.raises(ValueError):
            HierasCanNetwork(11, landmark_orders=orders)


class TestMembership:
    def test_add_peer_preserves_tiling(self):
        net = CanNetwork(np.arange(20), seed=10)
        net.add_peer(100)
        assert net.n_peers == 21
        assert net.total_volume() == COORD_MAX**2

    def test_add_duplicate_rejected(self):
        net = CanNetwork(np.arange(5), seed=10)
        with pytest.raises(ValueError):
            net.add_peer(3)

    def test_added_peer_owns_its_point(self):
        from repro.dht.can import peer_point

        net = CanNetwork(np.arange(20), seed=11)
        net.add_peer(55)
        point = peer_point(55, 2)
        assert net.owner_of_point(point) == 55

    def test_remove_peer_sibling_merge(self):
        """A freshly split pair is a perfect sibling: removing one must
        merge, not rebuild."""
        net = CanNetwork(np.arange(8), seed=12)
        net.add_peer(99)
        merged = net.remove_peer(99)
        assert merged is True
        assert net.total_volume() == COORD_MAX**2
        assert 99 not in net.peers

    def test_remove_peer_always_preserves_tiling(self):
        net = CanNetwork(np.arange(30), seed=13)
        rng = np.random.default_rng(0)
        for peer in (3, 17, 8, 25, 0):
            net.remove_peer(peer)
            assert net.total_volume() == COORD_MAX**2
            # routing still works
            survivors = net.peers
            s = int(survivors[int(rng.integers(0, len(survivors)))])
            k = int(rng.integers(0, 2**32))
            r = net.route(s, k)
            assert r.owner == net.owner_of(k)

    def test_remove_last_rejected(self):
        net = CanNetwork(np.asarray([1]), seed=1)
        with pytest.raises(ValueError):
            net.remove_peer(1)

    def test_churn_sequence_consistency(self):
        net = CanNetwork(np.arange(16), seed=14)
        rng = np.random.default_rng(5)
        next_id = 100
        for _ in range(20):
            if rng.random() < 0.5 and net.n_peers > 2:
                victim = int(net.peers[int(rng.integers(0, net.n_peers))])
                net.remove_peer(victim)
            else:
                net.add_peer(next_id)
                next_id += 1
            assert net.total_volume() == COORD_MAX**2
            nbrs = net._neighbors
            for i, ns in enumerate(nbrs):
                for j in ns:
                    assert i in nbrs[int(j)]
