"""Tests for trace/sample persistence."""

import json

import numpy as np
import pytest

from repro.analysis.stats import RouteSample
from repro.util.ids import IdSpace
from repro.workloads.io import (
    export_sample_jsonl,
    load_sample,
    load_trace,
    save_sample,
    save_trace,
)
from repro.workloads.requests import generate_requests


@pytest.fixture()
def trace():
    return generate_requests(100, 20, IdSpace(16), seed=1)


@pytest.fixture()
def sample():
    rng = np.random.default_rng(0)
    hops = rng.integers(1, 10, 100)
    low = np.minimum(rng.integers(0, 8, 100), hops)
    return RouteSample(
        hops=hops,
        latency_ms=rng.uniform(0, 500, 100),
        low_layer_hops=low,
        top_layer_hops=hops - low,
        low_layer_latency_ms=rng.uniform(0, 100, 100),
    )


class TestTraceIO:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.sources, trace.sources)
        np.testing.assert_array_equal(loaded.keys, trace.keys)

    def test_rejects_wrong_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError):
            load_trace(path)


class TestSampleIO:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "sample.npz"
        save_sample(sample, path)
        loaded = load_sample(path)
        np.testing.assert_array_equal(loaded.hops, sample.hops)
        np.testing.assert_allclose(loaded.latency_ms, sample.latency_ms)
        assert loaded.mean_hops == sample.mean_hops

    def test_rejects_wrong_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, hops=np.zeros(3))
        with pytest.raises(ValueError):
            load_sample(path)


class TestJsonl:
    def test_export_lines(self, sample, trace, tmp_path):
        path = tmp_path / "out.jsonl"
        n = export_sample_jsonl(sample, trace, path)
        assert n == 100
        lines = path.read_text().splitlines()
        assert len(lines) == 100
        row = json.loads(lines[0])
        assert row["source"] == int(trace.sources[0])
        assert row["hops"] == int(sample.hops[0])

    def test_length_mismatch(self, sample, tmp_path):
        short = generate_requests(5, 20, IdSpace(16), seed=2)
        with pytest.raises(ValueError):
            export_sample_jsonl(sample, short, tmp_path / "x.jsonl")
