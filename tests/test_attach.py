"""Tests for overlay attachment and landmark placement."""

import numpy as np
import pytest

from repro.topology.attach import (
    OverlayAttachment,
    PeerLatencyView,
    attach_overlay,
    place_landmarks,
)
from repro.topology.base import ROUTER_STUB


class TestAttachOverlay:
    def test_distinct_by_default(self, small_topology, rng):
        routers = attach_overlay(small_topology, 100, seed=rng)
        assert len(np.unique(routers)) == 100

    def test_stub_routers_only(self, small_topology, rng):
        routers = attach_overlay(small_topology, 100, seed=rng)
        assert np.all(small_topology.kind[routers] == ROUTER_STUB)

    def test_not_sorted(self, small_topology):
        routers = attach_overlay(small_topology, 150, seed=0)
        assert not np.all(routers[1:] >= routers[:-1])

    def test_with_replacement_when_oversubscribed(self, small_topology):
        n_stub = len(small_topology.stub_routers)
        routers = attach_overlay(small_topology, n_stub + 50, seed=0)
        assert len(routers) == n_stub + 50

    def test_deterministic(self, small_topology):
        a = attach_overlay(small_topology, 50, seed=9)
        b = attach_overlay(small_topology, 50, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero_peers(self, small_topology):
        with pytest.raises(ValueError):
            attach_overlay(small_topology, 0)


class TestPlaceLandmarks:
    def test_count_and_distinct(self, small_topology, small_latency):
        lms = place_landmarks(small_topology, small_latency, 6, seed=1)
        assert len(lms) == 6
        assert len(np.unique(lms)) == 6

    def test_spread_beats_random_dispersion(self, small_topology, small_latency):
        """Max–min placement should produce landmarks at least as far
        apart (min pairwise delay) as random placement, on average."""

        def min_pairwise(lms):
            pairs = [
                small_latency.pair(int(a), int(b))
                for i, a in enumerate(lms)
                for b in lms[i + 1 :]
            ]
            return min(pairs)

        spread = np.mean(
            [
                min_pairwise(
                    place_landmarks(small_topology, small_latency, 4, seed=s, strategy="spread")
                )
                for s in range(5)
            ]
        )
        rand = np.mean(
            [
                min_pairwise(
                    place_landmarks(small_topology, small_latency, 4, seed=s, strategy="random")
                )
                for s in range(5)
            ]
        )
        assert spread >= rand

    def test_unknown_strategy(self, small_topology, small_latency):
        with pytest.raises(ValueError):
            place_landmarks(small_topology, small_latency, 3, strategy="bogus")

    def test_too_many_landmarks(self, small_topology, small_latency):
        with pytest.raises(ValueError):
            place_landmarks(
                small_topology,
                small_latency,
                len(small_topology.stub_routers) + 1,
            )

    def test_deterministic(self, small_topology, small_latency):
        a = place_landmarks(small_topology, small_latency, 5, seed=3)
        b = place_landmarks(small_topology, small_latency, 5, seed=3)
        np.testing.assert_array_equal(a, b)


class TestOverlayAttachment:
    def test_landmark_distances_shape_and_values(
        self, small_deployment, small_latency
    ):
        attachment, _, _, _ = small_deployment
        d = attachment.landmark_distances(small_latency)
        assert d.shape == (attachment.n_peers, attachment.n_landmarks)
        # Spot-check one cell against a direct query.
        assert d[3, 1] == small_latency.pair(
            int(attachment.router_of_peer[3]), int(attachment.landmark_routers[1])
        )

    def test_peer_latency_view_maps_indices(self, small_deployment, small_latency):
        attachment, view, _, _ = small_deployment
        assert isinstance(view, PeerLatencyView)
        u, v = 7, 42
        expected = small_latency.pair(
            int(attachment.router_of_peer[u]), int(attachment.router_of_peer[v])
        )
        assert view.pair(u, v) == expected
        np.testing.assert_array_equal(
            view.pairs(np.asarray([u]), np.asarray([v])), np.asarray([expected])
        )

    def test_view_to_targets(self, small_deployment):
        _, view, _, _ = small_deployment
        targets = np.asarray([0, 1, 2])
        np.testing.assert_array_equal(
            view.to_targets(5, targets), view.pairs(np.full(3, 5), targets)
        )

    def test_counts(self, small_deployment):
        attachment, _, _, _ = small_deployment
        assert attachment.n_peers == 200
        assert attachment.n_landmarks == 4
