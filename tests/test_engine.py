"""Tests for repro.engine — the vectorized batch routing engine.

The engine's contract is *bit-identical* semantics to the scalar
``route()`` loop: same owners, same paths, same hop counts and exact
float equality on latencies.  The property tests here sweep seeds ×
stacks × depths × successor-list settings and compare array-for-array
with no tolerance.
"""

import numpy as np
import pytest

from repro.analysis.stats import collect_routes
from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.dht.base import ZeroLatency
from repro.engine import (
    BatchRouteResult,
    batch_route,
    scalar_batch_route,
    supports_batch,
)
from repro.metrics.registry import MetricsRegistry
from repro.metrics.sinks import SummarySink
from repro.metrics.spans import SpanRecorder
from repro.topology.latency import CoordinateLatencyModel
from repro.util.ids import IdSpace


def build_pair(
    n=120, depth=2, seed=5, bits=16, landmarks=4, latency=True, **hieras_kw
):
    """A (chord, hieras) pair over a synthetic planar deployment."""
    rng = np.random.default_rng(seed)
    space = IdSpace(bits)
    ids = space.sample_unique_ids(n, rng)
    distances = rng.uniform(0, 300, size=(n, landmarks))
    orders = BinningScheme.default_for_depth(max(depth, 2)).orders(distances)
    model = (
        CoordinateLatencyModel(rng.uniform(0, 500, size=(n, 2)))
        if latency
        else ZeroLatency()
    )
    chord = ChordNetwork(space, ids, latency=model)
    hieras = HierasNetwork(
        space, ids, latency=model, landmark_orders=orders, depth=depth, **hieras_kw
    )
    return chord, hieras


def make_requests(network, n_requests, seed):
    rng = np.random.default_rng(seed ^ 0x5EED)
    sources = rng.integers(0, network.n_peers, size=n_requests)
    keys = rng.integers(0, network.space.size, size=n_requests, dtype=np.uint64)
    return sources, keys


def assert_identical(batch: BatchRouteResult, scalar: BatchRouteResult):
    """Bit-exact equality of every array the engine promises."""
    assert np.array_equal(batch.owner, scalar.owner)
    assert np.array_equal(batch.hops, scalar.hops)
    assert np.array_equal(batch.hops_per_layer, scalar.hops_per_layer)
    # Exact float equality — the contract, not np.allclose.
    assert np.array_equal(batch.latency_ms, scalar.latency_ms)
    assert np.array_equal(
        batch.low_layer_latency_ms(), scalar.low_layer_latency_ms()
    )
    if batch.paths is not None and scalar.paths is not None:
        for lane in range(len(batch.hops)):
            assert batch.path(lane) == scalar.path(lane)


class TestBatchScalarEquivalence:
    """The tentpole property: batch ≡ scalar, bit for bit."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("depth", [2, 3])
    @pytest.mark.parametrize("r", [0, 8])
    def test_hieras_matches_scalar(self, seed, depth, r):
        _, net = build_pair(n=90, depth=depth, seed=seed, successor_list_r=r)
        sources, keys = make_requests(net, 300, seed)
        batch = batch_route(net, sources, keys, paths=True)
        scalar = scalar_batch_route(net, sources, keys, paths=True)
        assert_identical(batch, scalar)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("r", [0, 8])
    def test_chord_matches_scalar(self, seed, r):
        rng = np.random.default_rng(seed)
        space = IdSpace(16)
        ids = space.sample_unique_ids(90, rng)
        model = CoordinateLatencyModel(rng.uniform(0, 500, size=(90, 2)))
        net = ChordNetwork(space, ids, latency=model, successor_list_r=r)
        sources, keys = make_requests(net, 300, seed)
        batch = batch_route(net, sources, keys, paths=True)
        scalar = scalar_batch_route(net, sources, keys, paths=True)
        assert_identical(batch, scalar)

    @pytest.mark.parametrize("policy", ["transitions", "always", "off"])
    def test_hieras_policies(self, policy):
        _, net = build_pair(
            n=80, depth=3, seed=9, successor_list_r=6, successor_list_policy=policy
        )
        sources, keys = make_requests(net, 250, 9)
        assert_identical(
            batch_route(net, sources, keys, paths=True),
            scalar_batch_route(net, sources, keys, paths=True),
        )

    def test_zero_latency(self):
        chord, hieras = build_pair(n=60, seed=3, latency=False)
        for net in (chord, hieras):
            sources, keys = make_requests(net, 150, 3)
            assert_identical(
                batch_route(net, sources, keys, paths=True),
                scalar_batch_route(net, sources, keys, paths=True),
            )

    def test_exact_member_id_keys(self):
        chord, hieras = build_pair(n=50, seed=11)
        for net in (chord, hieras):
            rng = np.random.default_rng(11)
            sources = rng.integers(0, net.n_peers, size=net.n_peers)
            keys = np.asarray(
                [net.id_of(p) for p in range(net.n_peers)], dtype=np.uint64
            )
            assert_identical(
                batch_route(net, sources, keys, paths=True),
                scalar_batch_route(net, sources, keys, paths=True),
            )

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_tiny_networks(self, n):
        chord, hieras = build_pair(n=n, seed=2)
        for net in (chord, hieras):
            sources, keys = make_requests(net, 64, n)
            assert_identical(
                batch_route(net, sources, keys, paths=True),
                scalar_batch_route(net, sources, keys, paths=True),
            )

    def test_source_owns_key(self):
        chord, _ = build_pair(n=40, seed=4)
        keys = np.asarray(
            [chord.id_of(p) for p in range(chord.n_peers)], dtype=np.uint64
        )
        owners = np.asarray([chord.owner_of(int(k)) for k in keys], dtype=np.int64)
        result = batch_route(chord, owners, keys)
        assert np.array_equal(result.owner, owners)
        assert np.array_equal(result.hops, np.zeros(len(keys), dtype=np.int64))
        assert np.array_equal(result.latency_ms, np.zeros(len(keys)))


class TestResultShape:
    def test_route_result_round_trip(self):
        _, net = build_pair(n=70, depth=3, seed=6)
        sources, keys = make_requests(net, 40, 6)
        result = batch_route(net, sources, keys, paths=True)
        for lane in (0, 7, 39):
            rr = result.to_route_result(lane)
            direct = net.route(int(sources[lane]), int(keys[lane]))
            assert rr.path == direct.path
            assert rr.owner == direct.owner
            assert rr.latency_ms == direct.latency_ms
            assert rr.hops_per_layer == direct.hops_per_layer

    def test_paths_require_opt_in(self):
        chord, _ = build_pair(n=30, seed=1)
        sources, keys = make_requests(chord, 10, 1)
        result = batch_route(chord, sources, keys)
        assert result.paths is None
        with pytest.raises(ValueError):
            result.path(0)

    def test_dead_source_rejected(self):
        chord, _ = build_pair(n=30, seed=1)
        chord.remove_peer(3)
        sources = np.asarray([3], dtype=np.int64)
        keys = np.asarray([123], dtype=np.uint64)
        with pytest.raises(ValueError):
            batch_route(chord, sources, keys)

    def test_unknown_engine_rejected(self):
        chord, _ = build_pair(n=30, seed=1)
        sources, keys = make_requests(chord, 4, 1)
        with pytest.raises(ValueError):
            batch_route(chord, sources, keys, engine="gpu")


class TestFallback:
    def test_supports_batch_flips_with_tracing(self):
        chord, hieras = build_pair(n=40, seed=8)
        for net in (chord, hieras):
            assert supports_batch(net)
            recorder = SpanRecorder(registry=MetricsRegistry(), sinks=[SummarySink()])
            net.enable_tracing(recorder)
            try:
                assert not supports_batch(net)
            finally:
                net.disable_tracing()
            assert supports_batch(net)

    def test_subclass_not_batchable(self):
        class WeirdChord(ChordNetwork):
            def route(self, source, key):  # pragma: no cover - marker only
                return super().route(source, key)

        rng = np.random.default_rng(0)
        space = IdSpace(12)
        net = WeirdChord(space, space.sample_unique_ids(20, rng))
        assert not supports_batch(net)

    def test_batch_route_falls_back_when_traced(self):
        chord, _ = build_pair(n=40, seed=8)
        sources, keys = make_requests(chord, 50, 8)
        want = batch_route(chord, sources, keys, paths=True)
        recorder = SpanRecorder(registry=MetricsRegistry(), sinks=[SummarySink()])
        chord.enable_tracing(recorder)
        try:
            got = batch_route(chord, sources, keys, paths=True)
        finally:
            chord.disable_tracing()
        assert_identical(got, want)


class TestExperimentWiring:
    def test_collect_routes_engines_agree(self):
        chord, hieras = build_pair(n=80, depth=3, seed=13)
        from repro.workloads.requests import generate_requests

        trace = generate_requests(
            300, chord.n_peers, chord.space, seed=np.random.default_rng(13)
        )
        for net in (chord, hieras):
            a = collect_routes(net, trace, engine="scalar")
            b = collect_routes(net, trace, engine="batch")
            assert np.array_equal(a.hops, b.hops)
            assert np.array_equal(a.latency_ms, b.latency_ms)
            assert np.array_equal(a.low_layer_hops, b.low_layer_hops)
            assert np.array_equal(a.top_layer_hops, b.top_layer_hops)
            assert np.array_equal(a.low_layer_latency_ms, b.low_layer_latency_ms)

    def test_perf_baseline_metrics_identical_across_engines(self):
        from repro.experiments.baseline import run_perf_baseline

        a = run_perf_baseline(seed=3, n_peers=220, n_requests=300, engine="scalar")
        b = run_perf_baseline(seed=3, n_peers=220, n_requests=300, engine="batch")
        assert a["metrics"] == b["metrics"]

    def test_cache_uncached_cell_identical_across_engines(self):
        from repro.cache import CachePolicy
        from repro.experiments.cache_exp import make_zipf_trace, run_cache_cell
        from repro.experiments.config import SimConfig
        from repro.experiments.runner import build_bundle

        bundle = build_bundle(
            SimConfig(model="ts", n_peers=260, n_landmarks=4, depth=2, seed=6)
        )
        trace = make_zipf_trace(bundle, 500, catalog_size=200, zipf_exponent=0.95)
        off = CachePolicy(capacity=0)
        for stack in ("chord", "hieras"):
            a = run_cache_cell(
                bundle, trace, stack=stack, policy=off, engine="scalar"
            )
            b = run_cache_cell(
                bundle, trace, stack=stack, policy=off, engine="batch"
            )
            assert a == b

    def test_bench_batchroute_document(self):
        from repro.experiments.batchbench import SCHEMA, run_bench_batchroute

        doc = run_bench_batchroute(seed=2, sizes=(128,), n_requests=200)
        assert doc["schema"] == SCHEMA
        cells = doc["metrics"]["cells"]
        assert set(cells) == {"chord_n128", "hieras_n128"}
        assert all(c["engines_agree"] for c in cells.values())
        assert all(doc["phases"][name]["speedup"] > 0 for name in cells)


class TestBatchMembership:
    """add_peers/remove_peers/revive_peers ≡ their sequential singles."""

    def _state(self, net):
        ring = net.ring if isinstance(net, ChordNetwork) else net.global_ring
        return (
            [int(v) for v in ring.ids],
            [net.is_alive(p) for p in range(len(net._id_of_peer))],
        )

    def test_chord_remove_matches_sequential(self):
        a, _ = build_pair(n=60, seed=21)
        b, _ = build_pair(n=60, seed=21)
        victims = [3, 17, 42, 5]
        for v in victims:
            a.remove_peer(v)
        b.remove_peers(victims)
        assert self._state(a) == self._state(b)

    def test_hieras_remove_and_revive_match_sequential(self):
        _, a = build_pair(n=60, depth=3, seed=22)
        _, b = build_pair(n=60, depth=3, seed=22)
        victims = [8, 1, 33]
        for v in victims:
            a.remove_peer(v)
        b.remove_peers(victims)
        assert self._state(a) == self._state(b)
        for v in victims:
            a.revive_peer(v)
        b.revive_peers(victims)
        assert self._state(a) == self._state(b)
        for layer in range(2, a.depth + 1):
            assert a.ring_sizes(layer).tolist() == b.ring_sizes(layer).tolist()

    def test_chord_add_peers_matches_sequential(self):
        a, _ = build_pair(n=40, seed=23)
        b, _ = build_pair(n=40, seed=23)
        space = a.space
        fresh = [
            int(v)
            for v in space.sample_unique_ids(200, np.random.default_rng(99))
            if int(v) not in a.ring
        ][:5]
        idx_a = [a.add_peer(v) for v in fresh]
        idx_b = b.add_peers(fresh)
        assert idx_a == idx_b
        assert self._state(a) == self._state(b)

    def test_hieras_add_peers_matches_sequential(self):
        _, a = build_pair(n=40, depth=2, seed=24)
        _, b = build_pair(n=40, depth=2, seed=24)
        names = a.ring_name_of(0, 2)
        fresh = [
            int(v)
            for v in a.space.sample_unique_ids(200, np.random.default_rng(98))
            if int(v) not in a.global_ring
        ][:4]
        idx_a = [a.add_peer(v, [names]) for v in fresh]
        idx_b = b.add_peers(fresh, [[names] for _ in fresh])
        assert idx_a == idx_b
        assert self._state(a) == self._state(b)

    def test_remove_batch_is_atomic(self):
        chord, _ = build_pair(n=10, seed=25)
        before = self._state(chord)
        with pytest.raises(ValueError, match="not alive"):
            chord.remove_peers([2, 2])
        assert self._state(chord) == before
        with pytest.raises(ValueError, match="last peer"):
            chord.remove_peers(list(range(10)))
        assert self._state(chord) == before

    def test_add_batch_rejects_duplicates(self):
        chord, _ = build_pair(n=10, seed=26)
        existing = int(chord.ids[0])
        with pytest.raises(ValueError, match="already present"):
            chord.add_peers([existing])
        free = next(
            k for k in range(chord.space.size) if k not in chord.ring
        )
        with pytest.raises(ValueError, match="already present"):
            chord.add_peers([free, free])

    def test_empty_batches_are_noops(self):
        chord, hieras = build_pair(n=10, seed=27)
        for net in (chord, hieras):
            before = self._state(net)
            net.remove_peers([])
            net.revive_peers([])
            before_ring = net is hieras and net.rings_at_layer(2)
            assert self._state(net) == before
            if net is hieras:
                # no rebuild happened: the cached mapping is the same object
                assert net.rings_at_layer(2) is before_ring
        assert chord.add_peers([]) == []

    def test_routes_after_batch_churn(self):
        _, net = build_pair(n=50, depth=2, seed=28, successor_list_r=4)
        net.remove_peers([2, 7, 11, 30])
        sources = np.asarray(
            [p for p in range(50) if net.is_alive(p)][:20], dtype=np.int64
        )
        keys = make_requests(net, 20, 28)[1]
        assert_identical(
            batch_route(net, sources, keys, paths=True),
            scalar_batch_route(net, sources, keys, paths=True),
        )


class TestCachedAccessors:
    def test_ring_sizes_cached_and_fresh_after_rebuild(self):
        _, net = build_pair(n=60, depth=3, seed=30)
        sizes = net.ring_sizes(2)
        assert sizes is net.ring_sizes(2)  # cached, not rebuilt per call
        assert not sizes.flags.writeable
        total_before = int(sizes.sum())
        assert total_before == net.n_peers
        net.remove_peer(0)
        assert int(net.ring_sizes(2).sum()) == net.n_peers
        assert net.ring_sizes(2) is not sizes

    def test_rings_at_layer_cached(self):
        _, net = build_pair(n=60, depth=3, seed=31)
        assert net.rings_at_layer(2) is net.rings_at_layer(2)
        with pytest.raises(ValueError):
            net.ring_sizes(1)
        with pytest.raises(ValueError):
            net.ring_sizes(net.depth + 1)
