"""Tests for the fault-aware replication layer (``repro.replication``)."""

import numpy as np
import pytest

from repro.dht.chord import ChordNetwork
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.registry import MetricsRegistry
from repro.metrics.spans import SpanRecorder
from repro.replication import (
    ReplicatedStore,
    ReplicationPolicy,
    global_successors,
    replica_group,
)
from repro.util.ids import IdSpace


def make_chord(n=40, seed=0):
    space = IdSpace(16)
    ids = space.sample_unique_ids(n, np.random.default_rng(seed))
    return ChordNetwork(space, ids)


def group_of(net, name, policy):
    return replica_group(net, int(net.space.hash_key(name)), policy)


def crash_injector(net, peers, *, at_ms=10.0, seed=1):
    plan = FaultPlan(seed=seed)
    plan.crash_peers(at_ms=at_ms, peers=list(peers))
    return FaultInjector(plan, len(net._alive))


class TestPolicy:
    def test_defaults(self):
        policy = ReplicationPolicy()
        assert policy.group_size == 3
        assert policy.effective_write_quorum == 2
        assert policy.effective_read_quorum == 2

    def test_pinned_quorums(self):
        policy = ReplicationPolicy(replicas=4, write_quorum=5, read_quorum=1)
        assert policy.effective_write_quorum == 5
        assert policy.effective_read_quorum == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": -1},
            {"consistency": "paxos"},
            {"placement": "random"},
            {"write_quorum": 0},
            {"write_quorum": 4},  # > group_size for replicas=2
            {"read_quorum": 9},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplicationPolicy(**kwargs)

    def test_describe(self):
        label = ReplicationPolicy(consistency="quorum", hinted_handoff=False).describe()
        assert "quorum" in label and "W=2/R=2" in label and "handoff" not in label


class TestPlacement:
    def test_successor_group_matches_ring(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2)
        group = group_of(net, "file", policy)
        owner = net.owner_of(net.space.hash_key("file"))
        assert group == [owner] + net.successor_list(owner, 2)

    def test_tiny_ring_dedupes(self):
        net = make_chord(n=3)
        policy = ReplicationPolicy(replicas=5, consistency="quorum", write_quorum=1)
        group = group_of(net, "file", policy)
        assert len(group) == len(set(group)) == 3  # whole ring, no wrap dupes

    def test_chord_ring_scoped_equals_successor(self):
        net = make_chord()
        ring_scoped = ReplicationPolicy(replicas=3, placement="ring_scoped")
        successor = ReplicationPolicy(replicas=3, placement="successor")
        for name in ("a", "b", "c"):
            assert group_of(net, name, ring_scoped) == group_of(net, name, successor)

    def test_hieras_ring_scoped_stays_in_low_ring(self, small_networks):
        _, hieras = small_networks
        policy = ReplicationPolicy(replicas=2, placement="ring_scoped")
        key = int(hieras.space.hash_key("file"))
        group = replica_group(hieras, key, policy)
        owner = group[0]
        ring_members = set(
            int(p) for p in hieras.ring_of(owner, hieras.depth).peers
        )
        # The owner's low-layer ring had room: replicas stay inside it.
        if len(ring_members) > policy.replicas:
            assert all(peer in ring_members for peer in group[1:])

    def test_hieras_ring_scoped_pads_small_rings(self, small_networks):
        _, hieras = small_networks
        # Ask for more replicas than any low-layer ring holds: the group
        # must be padded from global successors up to full size.
        policy = ReplicationPolicy(replicas=8, placement="ring_scoped",
                                   consistency="quorum")
        key = int(hieras.space.hash_key("file"))
        group = replica_group(hieras, key, policy)
        assert len(group) == len(set(group))
        assert len(group) == policy.group_size

    def test_global_successors_both_stacks(self, small_networks):
        chord, hieras = small_networks
        # Same membership, same ids: the global successor walk agrees.
        for peer in (0, 7, 123):
            assert global_successors(chord, peer, 3) == global_successors(hieras, peer, 3)

    def test_zero_replicas_owner_only(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=0)
        group = group_of(net, "file", policy)
        assert group == [net.owner_of(net.space.hash_key("file"))]


class TestFaultFree:
    @pytest.mark.parametrize("consistency", ["chain", "quorum"])
    def test_roundtrip(self, consistency):
        net = make_chord()
        store = ReplicatedStore(net, ReplicationPolicy(consistency=consistency))
        put = store.put(0, "song.mp3", {"holders": [3, 9]})
        assert put.success and not put.aborted and put.acks == 3
        got = store.get(5, "song.mp3")
        assert got.success and got.value == {"holders": [3, 9]}
        assert got.version == put.version and not got.stale and not got.lost
        assert store.holder_count("song.mp3") == 3

    def test_versions_are_monotonic(self):
        net = make_chord()
        store = ReplicatedStore(net, ReplicationPolicy())
        v1 = store.put(0, "f", "a").version
        v2 = store.put(0, "f", "b").version
        assert v2 > v1
        assert store.version_of("f") == v2
        assert store.version_of("never-stored") == -1

    def test_put_charges_route_plus_fanout(self, small_networks):
        net, _ = small_networks  # the fixture has a real latency model
        store = ReplicatedStore(net, ReplicationPolicy(consistency="quorum"))
        put = store.put(0, "f", "v")
        assert put.route is not None
        # owner writes locally (free), two replica messages ride on top.
        assert put.hops == put.route.hops + 2
        assert put.latency_ms > put.route.latency_ms
        assert put.timeouts == 0

    def test_missing_key_read(self):
        net = make_chord()
        store = ReplicatedStore(net, ReplicationPolicy(consistency="quorum"))
        got = store.get(0, "never-stored")
        assert got.success and got.value is None and not got.lost

    def test_tracing_guarded(self):
        net = make_chord()
        store = ReplicatedStore(net, ReplicationPolicy())
        store.put(0, "f", "v")  # no recorder: nothing raises, nothing recorded
        recorder = store.enable_tracing(SpanRecorder(registry=MetricsRegistry()))
        store.put(0, "f", "v2")
        store.get(1, "f")
        assert recorder.registry.counter("replication.puts").value == 1
        assert recorder.registry.counter("replication.gets").value == 1
        store.disable_tracing()
        store.put(0, "f", "v3")
        assert recorder.registry.counter("replication.puts").value == 1


class TestChainVsQuorum:
    """The pinned divergence scenario: same fault plan, opposite fates."""

    def setup_scenario(self, consistency):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2, consistency=consistency)
        tail = group_of(net, "file", policy)[-1]
        injector = crash_injector(net, [tail])
        store = ReplicatedStore(net, policy, injector=injector)
        source = next(
            p for p in range(net.n_peers)
            if p != tail and p not in group_of(net, "file", policy)
        )
        store.advance_to(20.0)  # the tail is now dead
        return net, store, source, tail

    def test_chain_write_aborts_on_dead_tail(self):
        _, store, source, tail = self.setup_scenario("chain")
        put = store.put(source, "file", "v")
        assert not put.success and put.aborted
        assert put.acks == 2  # owner + first replica committed before the break
        assert store.stats.chain_aborts == 1
        assert store.pending_hints(tail) == 1

    def test_quorum_write_survives_dead_tail(self):
        _, store, source, tail = self.setup_scenario("quorum")
        put = store.put(source, "file", "v")
        assert put.success and put.acks == 2  # majority of 3
        assert store.stats.chain_aborts == 0
        assert store.pending_hints(tail) == 1  # the miss is still hinted

    def test_quorum_read_succeeds_where_chain_read_fails(self):
        _, chain_store, source, _ = self.setup_scenario("chain")
        _, quorum_store, q_source, _ = self.setup_scenario("quorum")
        chain_store.put(source, "file", "v")  # aborts, but owner+s1 hold it
        quorum_store.put(q_source, "file", "v")
        chain_read = chain_store.get(source, "file")
        quorum_read = quorum_store.get(q_source, "file")
        assert not chain_read.success  # the tail is unreachable
        assert quorum_read.success and quorum_read.value == "v"


class TestHintedHandoff:
    """Paired scenario: handoff on keeps the key alive, off loses it."""

    def run_scenario(self, hinted_handoff):
        net = make_chord()
        policy = ReplicationPolicy(
            replicas=2, consistency="quorum", hinted_handoff=hinted_handoff
        )
        group = group_of(net, "file", policy)
        owner, s1, s2 = group
        plan = FaultPlan(seed=3)
        plan.crash_peers(at_ms=10.0, peers=[s2])
        plan.crash_peers(at_ms=30.0, peers=[owner, s1])
        plan.revive_peers(at_ms=40.0, peers=[s2])
        store = ReplicatedStore(net, policy, injector=FaultInjector(plan, len(net._alive)))
        source = next(p for p in range(net.n_peers) if p not in group)
        store.advance_to(20.0)  # s2 dead
        put = store.put(source, "file", "v")
        assert put.success and put.acks == 2  # owner + s1; s2 missed
        store.advance_to(50.0)  # owner+s1 die, s2 rejoins (hints replay?)
        return store

    def test_handoff_on_prevents_loss(self):
        store = self.run_scenario(True)
        assert store.stats.hints_queued == 1
        assert store.stats.hints_replayed == 1
        audit = store.loss_audit()
        assert audit["lost"] == 0 and audit["loss_probability"] == 0.0

    def test_handoff_off_loses_the_key(self):
        store = self.run_scenario(False)
        assert store.stats.hints_queued == 0
        audit = store.loss_audit()
        assert audit["lost"] == 1 and audit["loss_probability"] == 1.0

    def test_stale_hint_never_clobbers_newer_write(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2, consistency="quorum")
        group = group_of(net, "file", policy)
        s1 = group[1]
        plan = FaultPlan(seed=4)
        plan.crash_peers(at_ms=10.0, peers=[s1])
        plan.revive_peers(at_ms=30.0, peers=[s1])
        store = ReplicatedStore(net, policy, injector=FaultInjector(plan, len(net._alive)))
        source = next(p for p in range(net.n_peers) if p not in group)
        store.advance_to(20.0)
        put_old = store.put(source, "file", "old")  # hint for s1 at version v
        # s1 somehow already holds a newer version (e.g. a repair raced).
        store._write_local(s1, put_old.key, "newer", put_old.version + 1)
        store.advance_to(40.0)  # replay must not regress s1
        assert store._read_local(s1, put_old.key) == ("newer", put_old.version + 1)


class TestReadRepair:
    def make_stale_replica(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2, consistency="quorum",
                                   hinted_handoff=False)
        group = group_of(net, "file", policy)
        s1 = group[1]
        plan = FaultPlan(seed=5)
        plan.crash_peers(at_ms=10.0, peers=[s1])
        plan.revive_peers(at_ms=30.0, peers=[s1])
        store = ReplicatedStore(net, policy, injector=FaultInjector(plan, len(net._alive)))
        source = next(p for p in range(net.n_peers) if p not in group)
        store.put(source, "file", "v1")
        store.advance_to(20.0)
        store.put(source, "file", "v2")  # s1 misses the update (no hints)
        store.advance_to(40.0)  # s1 back, still at v1
        return net, store, source, s1

    def test_quorum_read_detects_and_repairs(self):
        _, store, source, s1 = self.make_stale_replica()
        key = int(store.network.space.hash_key("file"))
        assert store._read_local(s1, key)[0] == "v1"
        got = store.get(source, "file")
        assert got.success and got.value == "v2"
        assert got.stale and got.repaired >= 1
        assert store.stats.stale_reads == 1
        assert store._read_local(s1, key)[0] == "v2"  # repaired in place
        again = store.get(source, "file")
        assert not again.stale  # one repair was enough

    def test_chain_read_returns_stale_silently(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2, consistency="chain",
                                   hinted_handoff=False)
        group = group_of(net, "file", policy)
        tail = group[-1]
        plan = FaultPlan(seed=6)
        plan.crash_peers(at_ms=10.0, peers=[tail])
        plan.revive_peers(at_ms=30.0, peers=[tail])
        store = ReplicatedStore(net, policy, injector=FaultInjector(plan, len(net._alive)))
        source = next(p for p in range(net.n_peers) if p not in group)
        store.put(source, "file", "v1")
        store.advance_to(20.0)
        store.put(source, "file", "v2")  # aborts at the dead tail
        store.advance_to(40.0)
        got = store.get(source, "file")
        # The tail answers with the version it has — staleness is real
        # but invisible to chain reads (no second opinion to compare).
        assert got.success and got.value == "v1"
        assert not got.stale
        assert got.version < store.version_of("file")


class TestLossAccounting:
    def test_zero_replicas_owner_crash_loses_key(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=0)
        owner = group_of(net, "file", policy)[0]
        injector = crash_injector(net, [owner])
        store = ReplicatedStore(net, policy, injector=injector)
        source = next(p for p in range(net.n_peers) if p != owner)
        store.put(source, "file", "v")
        store.advance_to(20.0)
        audit = store.loss_audit()
        assert audit["lost"] == 1
        got = store.get(source, "file")
        if got.success:  # routing may still reach a (non-holding) owner
            assert got.lost and got.value is None
            assert store.stats.lost_reads == 1

    def test_audit_counts_stale_only_keys(self):
        _, store, _, _ = TestReadRepair().make_stale_replica()
        # Kill every fresh holder; the revived stale replica survives.
        key = int(store.network.space.hash_key("file"))
        fresh = [
            peer for peer in sorted(store._stored)
            if store._read_local(peer, key) == ("v2", store.version_of("file"))
        ]
        for peer in fresh:
            store.injector.state.dead[peer] = True
        audit = store.loss_audit()
        assert audit["stale_only"] == 1 and audit["lost"] == 0


class TestMembershipWiring:
    @pytest.mark.parametrize("stack", ["chord", "hieras"])
    def test_remove_peers_drops_disks(self, small_networks, stack):
        chord, hieras = small_networks
        net = chord if stack == "chord" else hieras
        store = ReplicatedStore(net, ReplicationPolicy(consistency="quorum"))
        net.attach_store(store)
        try:
            put = store.put(0, "file", "v")
            holder = next(
                p for p in sorted(store._stored) if put.key in store.stored_keys(p)
            )
            net.remove_peers([holder])
            try:
                assert store.stored_keys(holder) == set()
            finally:
                net.revive_peers([holder])
        finally:
            net.detach_store(store)

    def test_revive_peers_replays_hints(self):
        net = make_chord()
        policy = ReplicationPolicy(replicas=2, consistency="quorum")
        group = group_of(net, "file", policy)
        s1 = group[1]
        injector = crash_injector(net, [s1])
        store = ReplicatedStore(net, policy, injector=injector)
        net.attach_store(store)
        store.advance_to(20.0)
        put = store.put(next(p for p in range(net.n_peers) if p not in group),
                        "file", "v")
        assert store.pending_hints(s1) == 1
        # The crash is mirrored into membership, then the host rejoins:
        # removal wipes its disk but the hints others hold survive.
        net.remove_peers([s1])
        net.revive_peers([s1])
        assert store.pending_hints(s1) == 0
        assert store.stats.hints_replayed == 1
        assert store._read_local(s1, put.key) == ("v", put.version)

    def test_detach_store_stops_notifications(self):
        net = make_chord()
        store = ReplicatedStore(net, ReplicationPolicy(consistency="quorum"))
        net.attach_store(store)
        net.detach_store(store)
        put = store.put(0, "file", "v")
        holder = next(p for p in sorted(store._stored) if put.key in store.stored_keys(p))
        net.remove_peers([holder])
        assert put.key in store.stored_keys(holder)  # no listener, no drop
        net.revive_peers([holder])


class TestDeterminism:
    def run_once(self):
        net = make_chord(seed=9)
        plan = FaultPlan(seed=7)
        plan.crash_fraction(at_ms=50.0, fraction=0.2)
        store = ReplicatedStore(
            net,
            ReplicationPolicy(replicas=2, consistency="quorum"),
            injector=FaultInjector(plan, len(net._alive)),
        )
        def live(peer):
            while store.injector.state.is_dead(peer % net.n_peers):
                peer += 1
            return peer % net.n_peers

        for i in range(30):
            store.put(live(i), f"k{i}", i)
        store.advance_to(60.0)
        for i in range(30):
            store.put(live(i + 3), f"k{i}", i + 100)
            store.get(live(i + 5), f"k{i}")
        return store.stats.as_dict(), store.loss_audit()

    def test_identical_runs_identical_stats(self):
        assert self.run_once() == self.run_once()
