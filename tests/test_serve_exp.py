"""Tests for the saturation experiment (``repro.experiments.serve_exp``)."""

import json

import pytest

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle
from repro.experiments.serve_exp import (
    SCHEMA,
    mixed_capacity_per_s,
    run_bench_serve,
    run_serve_cell,
    write_bench_serve,
)
from repro.loadgen import WorkloadMix
from repro.serve import ServiceConfig

N_PEERS = 100
DURATION_MS = 1500.0


@pytest.fixture(scope="module")
def bundle():
    return build_bundle(
        SimConfig(model="ts", n_peers=N_PEERS, n_landmarks=4, depth=2, seed=42)
    )


def run_cell(bundle, **overrides):
    kwargs = dict(
        stack="hieras",
        rate_per_s=200.0,
        duration_ms=DURATION_MS,
        mix=WorkloadMix(catalog_size=16),
        service=ServiceConfig(),
        seed=42,
    )
    kwargs.update(overrides)
    return run_serve_cell(bundle, **kwargs)


class TestCapacityModel:
    def test_coalesced_beats_scalar(self):
        cfg = ServiceConfig()
        batched = mixed_capacity_per_s(cfg, 0.75)
        scalar = mixed_capacity_per_s(cfg, 0.75, coalesced=False)
        assert batched > 2 * scalar

    def test_pure_read_matches_config_property(self):
        cfg = ServiceConfig()
        assert mixed_capacity_per_s(cfg, 1.0) == pytest.approx(cfg.lookup_capacity_per_s)
        assert mixed_capacity_per_s(cfg, 1.0, coalesced=False) == pytest.approx(
            cfg.scalar_lookup_capacity_per_s
        )


class TestServeCell:
    def test_underloaded_cell_serves_everything(self, bundle):
        cell = run_cell(bundle)
        assert cell["rejected"] == 0 and cell["shed"] == 0 and cell["failed"] == 0
        assert cell["achieved_per_s"] == pytest.approx(
            1000.0 * cell["served"] / cell["makespan_ms"]
        )

    def test_overload_plateaus_at_model_capacity(self, bundle):
        cfg = ServiceConfig(max_batch=1)
        cell = run_cell(bundle, rate_per_s=2000.0, service=cfg)
        capacity = mixed_capacity_per_s(cfg, 0.75, coalesced=False)
        assert cell["achieved_per_s"] < 1.1 * capacity
        assert cell["achieved_per_s"] > 0.8 * capacity

    def test_flash_cell_spikes_queue(self, bundle):
        calm = run_cell(bundle, rate_per_s=300.0)
        flashed = run_cell(bundle, rate_per_s=300.0, schedule_kind="flash")
        assert flashed["max_queue_depth"] > calm["max_queue_depth"]

    def test_membership_cell_restores_network(self, bundle):
        before = int(bundle.hieras.n_peers)
        cell = run_cell(bundle, membership=True)
        assert int(bundle.hieras.n_peers) == before
        assert cell["leave_peers"] > 0
        assert cell["join_peers"] == cell["leave_peers"]
        assert cell["failed"] == 0

    def test_cells_are_deterministic(self, bundle):
        a = run_cell(bundle, rate_per_s=400.0)
        b = run_cell(bundle, rate_per_s=400.0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestBenchDocument:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_bench_serve(
            full=False,
            seed=42,
            n_peers=N_PEERS,
            duration_ms=DURATION_MS,
            rates=(200.0, 1600.0, 2400.0),
        )

    def test_schema_and_shape(self, doc):
        assert doc["schema"] == SCHEMA
        assert set(doc["metrics"]) == {"sweep", "flash", "coalescing", "churn", "headline"}
        assert len(doc["metrics"]["sweep"]) == 6  # 3 rates x 2 stacks

    def test_phases_are_wall_times(self, doc):
        assert all(
            "wall_ms" in p for name, p in doc["phases"].items() if name != "peak_rss"
        )
        assert doc["phases"]["peak_rss"]["peak_rss_mb"] > 0.0

    def test_knee_shift_present_for_both_stacks(self, doc):
        shift = doc["metrics"]["headline"]["knee_shift"]
        for stack in ("chord", "hieras"):
            pair = shift[stack]
            assert pair["batched_achieved_per_s"] > pair["scalar_achieved_per_s"]

    def test_admission_bounds_tail(self, doc):
        for row in doc["metrics"]["headline"]["admission"].values():
            assert row["bounded_queue_p99_ms"] <= row["unbounded_queue_p99_ms"]
            assert row["rejected"] > 0

    def test_metrics_reproducible(self, doc):
        again = run_bench_serve(
            full=False,
            seed=42,
            n_peers=N_PEERS,
            duration_ms=DURATION_MS,
            rates=(200.0, 1600.0, 2400.0),
        )
        assert json.dumps(doc["metrics"], sort_keys=True) == json.dumps(
            again["metrics"], sort_keys=True
        )

    def test_write_round_trips(self, doc, tmp_path):
        path = write_bench_serve(doc, tmp_path / "BENCH_serve.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"]["headline"] == json.loads(
            json.dumps(doc["metrics"]["headline"])
        )


class TestRegistryEntry:
    def test_saturation_registered(self):
        from repro.experiments.figures import EXPERIMENTS

        assert "saturation" in EXPERIMENTS
