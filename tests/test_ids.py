"""Unit and property tests for repro.util.ids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ids import DEFAULT_BITS, IdSpace, sha1_int, unique_sorted


class TestSha1Int:
    def test_deterministic(self):
        assert sha1_int("abc") == sha1_int("abc")

    def test_str_and_bytes_agree(self):
        assert sha1_int("abc") == sha1_int(b"abc")

    def test_respects_bits(self):
        for bits in (1, 8, 16, 32, 64, 160):
            assert 0 <= sha1_int("x", bits) < (1 << bits)

    def test_different_inputs_differ(self):
        assert sha1_int("a", 64) != sha1_int("b", 64)

    def test_truncation_is_prefix(self):
        # The 32-bit id is the top half of the 64-bit id.
        assert sha1_int("key", 64) >> 32 == sha1_int("key", 32)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            sha1_int("x", 0)
        with pytest.raises(ValueError):
            sha1_int("x", 161)

    @given(st.text(max_size=64))
    def test_range_property(self, s):
        assert 0 <= sha1_int(s, 20) < (1 << 20)


class TestIdSpace:
    def test_default_bits(self):
        assert IdSpace().bits == DEFAULT_BITS

    def test_size(self):
        assert IdSpace(bits=8).size == 256

    def test_wrap(self):
        space = IdSpace(bits=8)
        assert space.wrap(256) == 0
        assert space.wrap(257) == 1
        assert space.wrap(255) == 255

    def test_finger_start(self):
        space = IdSpace(bits=8)
        assert space.finger_start(121, 1) == 122
        assert space.finger_start(121, 2) == 123
        assert space.finger_start(121, 8) == (121 + 128) % 256

    def test_finger_start_paper_table2(self):
        # Paper Table 2: node 121 in a 2**8 space has finger starts
        # 122, 123, 125, 129, 137, 153, 185, 249.
        space = IdSpace(bits=8)
        starts = [space.finger_start(121, i) for i in range(1, 9)]
        assert starts == [122, 123, 125, 129, 137, 153, 185, 249]

    def test_finger_start_bounds(self):
        space = IdSpace(bits=8)
        with pytest.raises(ValueError):
            space.finger_start(0, 0)
        with pytest.raises(ValueError):
            space.finger_start(0, 9)

    def test_finger_starts_vector_matches_scalar(self):
        space = IdSpace(bits=16)
        vec = space.finger_starts(12345)
        for i in range(1, 17):
            assert int(vec[i - 1]) == space.finger_start(12345, i)

    def test_hash_key_in_range(self):
        space = IdSpace(bits=12)
        assert 0 <= space.hash_key("file.txt") < space.size

    def test_hash_node_matches_hash_key(self):
        space = IdSpace(bits=32)
        assert space.hash_node("10.0.0.1:80") == space.hash_key("10.0.0.1:80")

    def test_validate_id(self):
        space = IdSpace(bits=8)
        assert space.validate_id(255) == 255
        with pytest.raises(ValueError):
            space.validate_id(256)
        with pytest.raises(ValueError):
            space.validate_id(-1)

    def test_format_id_width(self):
        assert IdSpace(bits=8).format_id(15) == "0f"
        assert IdSpace(bits=32).format_id(1) == "00000001"

    def test_ids_from_names(self):
        space = IdSpace(bits=16)
        ids = space.ids_from_names(["a", "b"])
        assert ids == [space.hash_key("a"), space.hash_key("b")]


class TestSampling:
    def test_unique_and_in_range(self, rng):
        space = IdSpace(bits=16)
        ids = space.sample_unique_ids(1000, rng)
        assert len(np.unique(ids)) == 1000
        assert int(ids.max()) < space.size

    def test_not_sorted(self, rng):
        # Sorted output would correlate with other per-peer attributes;
        # the sampler promises random order (see docstring).
        space = IdSpace(bits=32)
        ids = space.sample_unique_ids(500, rng)
        assert not np.all(ids[1:] >= ids[:-1])

    def test_deterministic_per_seed(self):
        space = IdSpace(bits=32)
        a = space.sample_unique_ids(100, np.random.default_rng(5))
        b = space.sample_unique_ids(100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_exhaustive_space(self, rng):
        space = IdSpace(bits=4)
        ids = space.sample_unique_ids(16, rng)
        assert sorted(ids.tolist()) == list(range(16))

    def test_zero_count(self, rng):
        assert len(IdSpace(bits=8).sample_unique_ids(0, rng)) == 0

    def test_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            IdSpace(bits=4).sample_unique_ids(17, rng)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_sample_property(self, count, seed):
        space = IdSpace(bits=16)
        ids = space.sample_unique_ids(count, np.random.default_rng(seed))
        assert len(set(ids.tolist())) == count


def test_unique_sorted_dedups_and_sorts():
    out = unique_sorted([5, 1, 5, 3])
    assert out.tolist() == [1, 3, 5]
    assert out.dtype == np.uint64
