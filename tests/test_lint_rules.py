"""Fixture tests for the reprolint v2 rules.

Positive and negative fixtures for the flow-sensitive DET003 laundering
shapes and for every rule added with the dataflow engine: PERF001/002/
003, FLT001, FRZ001, EXC001, and the engine-level LNT002 (unused
suppression).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import ALL_CHECKERS, build_facts, lint_source
from repro.lint.engine import lint_paths

CORE = Path("src/repro/core/_fixture.py")
DHT = Path("src/repro/dht/_fixture.py")
SIM = Path("src/repro/sim/_fixture.py")
FAULTS = Path("src/repro/faults/_fixture.py")
ANALYSIS = Path("src/repro/analysis/_fixture.py")
EXPERIMENTS = Path("src/repro/experiments/_fixture.py")
TESTS = Path("tests/test_fixture.py")
EXAMPLES = Path("examples/demo_fixture.py")


def run(source: str, path: Path = CORE) -> list:
    return lint_source(path, textwrap.dedent(source), ALL_CHECKERS)


def rules(source: str, path: Path = CORE) -> list[str]:
    return [f.rule for f in run(source, path)]


# ----------------------------------------------------------------------
# DET003 — flow-sensitive laundering (the v2 acceptance shapes)
# ----------------------------------------------------------------------
class TestDet003Laundering:
    def test_set_laundered_through_intermediate_variable(self):
        src = """
        def f():
            s = {1, 2, 3}
            t = s
            return list(t)
        """
        assert "DET003" in rules(src)

    def test_set_laundered_through_helper_return(self):
        src = """
        def helper():
            return {1, 2, 3}

        def f():
            s = helper()
            return list(s)
        """
        assert "DET003" in rules(src)

    def test_set_laundered_through_transitive_helper(self):
        src = """
        def inner():
            return set(range(4))

        def outer():
            return inner()

        def f():
            return list(outer())
        """
        assert "DET003" in rules(src)

    def test_set_laundered_through_self_method(self):
        src = """
        class C:
            def _peers(self):
                return {1, 2}

            def snapshot(self):
                p = self._peers()
                return list(p)
        """
        assert "DET003" in rules(src)

    def test_captured_list_escaping_later(self):
        src = """
        def f():
            s = {1, 2, 3}
            t = list(s)
            return t
        """
        assert "DET003" in rules(src)

    def test_reassignment_with_sorted_kills_taint(self):
        src = """
        def f():
            s = {1, 2, 3}
            s = sorted(s)
            return list(s)
        """
        assert rules(src) == []

    def test_branch_join_keeps_taint(self):
        src = """
        def f(flag):
            if flag:
                s = {1, 2}
            else:
                s = [1, 2]
            return list(s)
        """
        assert "DET003" in rules(src)

    def test_helper_returning_sorted_stays_clean(self):
        src = """
        def helper():
            return sorted({1, 2, 3})

        def f():
            return list(helper())
        """
        assert rules(src) == []


# ----------------------------------------------------------------------
# PERF001 — no per-element record allocation on hot paths
# ----------------------------------------------------------------------
class TestLoopAllocation:
    def test_flags_record_construction_in_for_loop(self):
        src = """
        def build(peers):
            out = []
            for p in peers:
                out.append(FingerEntry(p))
            return out
        """
        assert rules(src, DHT) == ["PERF001"]

    def test_flags_record_construction_in_comprehension(self):
        src = """
        def build(peers):
            return [PeerInfo(p) for p in peers]
        """
        assert rules(src, DHT) == ["PERF001"]

    def test_raised_exceptions_are_exempt(self):
        src = """
        def build(peers):
            for p in peers:
                if p < 0:
                    raise LookupFailure(p)
        """
        assert rules(src, DHT) == []

    def test_error_suffixed_names_are_exempt(self):
        src = """
        def build(peers):
            for p in peers:
                e = RoutingError(p)
                collect(e)
        """
        assert rules(src, DHT) == []

    def test_lowercase_calls_stay_silent(self):
        src = """
        def build(peers):
            return [make_entry(p) for p in peers]
        """
        assert rules(src, DHT) == []

    def test_non_hot_module_stays_silent(self):
        src = """
        def build(peers):
            return [PeerInfo(p) for p in peers]
        """
        assert rules(src, ANALYSIS) == []

    def test_relaxed_scope_stays_silent(self):
        src = """
        def build(peers):
            return [PeerInfo(p) for p in peers]
        """
        assert rules(src, TESTS) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "def build(peers):\n"
            "    return [\n"
            "        PeerInfo(p)  # lint: allow-loop-alloc -- inspection API, not routing\n"
            "        for p in peers\n"
            "    ]\n"
        )
        assert rules(src, DHT) == []

    def test_project_facts_restrict_to_dataclasses(self, tmp_path):
        # With a real project scan, only @dataclass types count as
        # record types; plain classes (often flyweights/engines) don't.
        defs = tmp_path / "src/repro/dht/records.py"
        defs.parent.mkdir(parents=True)
        defs.write_text(
            textwrap.dedent(
                """
                from dataclasses import dataclass

                @dataclass
                class Row:
                    x: int

                class Engine:
                    pass
                """
            ),
            encoding="utf-8",
        )
        use = tmp_path / "src/repro/dht/use.py"
        use.write_text(
            textwrap.dedent(
                """
                def f(xs):
                    a = [Row(x) for x in xs]
                    b = [Engine() for x in xs]
                    return a, b
                """
            ),
            encoding="utf-8",
        )
        findings = lint_paths([tmp_path / "src"], ALL_CHECKERS)
        assert [(f.rule, f.line) for f in findings] == [("PERF001", 3)]


# ----------------------------------------------------------------------
# PERF002 — churn loops must amortise rebuilds
# ----------------------------------------------------------------------
class TestChurnRebuild:
    def test_flags_per_peer_removal_in_loop(self):
        src = """
        def fail_wave(net, dead):
            for p in dead:
                net.remove_peer(p)
        """
        assert rules(src, CORE) == ["PERF002"]

    def test_flags_direct_rebuild_in_loop(self):
        src = """
        def churn(net, waves):
            for w in waves:
                net._rebuild()
        """
        assert rules(src, FAULTS) == ["PERF002"]

    def test_batch_variant_stays_silent(self):
        src = """
        def fail_wave(net, dead):
            for wave in chunks(dead):
                net.remove_peers(wave)
        """
        assert rules(src, CORE) == []

    def test_rebuilders_own_loop_is_exempt(self):
        src = """
        def remove_peer(self, peer):
            for ring in self.rings:
                ring.remove_peer(peer)
        """
        assert rules(src, CORE) == []

    def test_out_of_scope_module_stays_silent(self):
        src = """
        def fail_wave(net, dead):
            for p in dead:
                net.remove_peer(p)
        """
        assert rules(src, EXPERIMENTS) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "def fail_wave(net, dead):\n"
            "    for p in dead:\n"
            "        net.remove_peer(p)  # lint: allow-churn-rebuild -- n<=2 in this path\n"
        )
        assert rules(src, CORE) == []


# ----------------------------------------------------------------------
# PERF003 — explicit dtypes on hot-path numpy constructors
# ----------------------------------------------------------------------
class TestDtypeWidening:
    def test_flags_dtypeless_asarray(self):
        src = "import numpy as np\ndef f(xs):\n    return np.asarray(xs)\n"
        assert rules(src, DHT) == ["PERF003"]

    def test_flags_dtypeless_zeros_and_full(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    a = np.zeros(n)\n"
            "    b = np.full((n,), 0)\n"
            "    return a, b\n"
        )
        assert rules(src, DHT) == ["PERF003", "PERF003"]

    def test_keyword_dtype_silences(self):
        src = "import numpy as np\ndef f(xs):\n    return np.asarray(xs, dtype=np.int64)\n"
        assert rules(src, DHT) == []

    def test_positional_dtype_silences(self):
        src = "import numpy as np\ndef f(xs):\n    return np.asarray(xs, np.int64)\n"
        assert rules(src, DHT) == []

    def test_arange_is_out_of_scope(self):
        src = "import numpy as np\ndef f(n):\n    return np.arange(n)\n"
        assert rules(src, DHT) == []

    def test_non_numpy_asarray_stays_silent(self):
        src = "def f(xs, backend):\n    return backend.asarray(xs)\n"
        assert rules(src, DHT) == []

    def test_non_hot_module_stays_silent(self):
        src = "import numpy as np\ndef f(xs):\n    return np.asarray(xs)\n"
        assert rules(src, ANALYSIS) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    return np.asarray(xs)  # lint: allow-dtype -- caller guarantees int64 input\n"
        )
        assert rules(src, DHT) == []


# ----------------------------------------------------------------------
# FLT001 — order-sensitive float accumulation
# ----------------------------------------------------------------------
class TestFloatAccumulation:
    def test_flags_float_sum_over_set(self):
        src = """
        def f(vals):
            s = set(vals)
            return sum(x / 2 for x in s)
        """
        assert rules(src, CORE) == ["FLT001"]

    def test_flags_float_augassign_over_dict_view(self):
        src = """
        def f(d):
            total = 0.0
            for v in d.values():
                total += v
            return total
        """
        assert rules(src, SIM) == ["FLT001"]

    def test_integer_accumulation_stays_silent(self):
        src = """
        def f(vals):
            s = set(vals)
            total = 0
            for x in s:
                total += x
            return total
        """
        assert rules(src, CORE) == []

    def test_sorted_iterable_silences(self):
        src = """
        def f(vals):
            s = set(vals)
            return sum(x / 2 for x in sorted(s))
        """
        assert rules(src, CORE) == []

    def test_sum_over_ordered_list_stays_silent(self):
        src = """
        def f(vals):
            return sum(x / 2 for x in vals)
        """
        assert rules(src, CORE) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "def f(vals):\n"
            "    s = set(vals)\n"
            "    return sum(x / 2 for x in s)  # lint: allow-float-order -- tolerance-checked\n"
        )
        assert rules(src, CORE) == []


# ----------------------------------------------------------------------
# FRZ001 — frozen-config mutation
# ----------------------------------------------------------------------
class TestFrozenMutation:
    def test_flags_setattr_outside_construction(self):
        src = """
        class Config:
            def tweak(self):
                object.__setattr__(self, "seed", 1)
        """
        assert rules(src, CORE) == ["FRZ001"]

    def test_construction_methods_are_exempt(self):
        src = """
        class Config:
            def __init__(self):
                object.__setattr__(self, "seed", 1)

            def __post_init__(self):
                object.__setattr__(self, "derived", 2)

            def __setstate__(self, state):
                object.__setattr__(self, "seed", state["seed"])
        """
        assert rules(src, CORE) == []

    def test_relaxed_scope_stays_silent(self):
        src = """
        def force(cfg):
            object.__setattr__(cfg, "seed", 1)
        """
        assert rules(src, TESTS) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "class Config:\n"
            "    def thaw(self):\n"
            '        object.__setattr__(self, "x", 1)  # lint: allow-frozen -- migration shim\n'
        )
        assert rules(src, CORE) == []


# ----------------------------------------------------------------------
# EXC001 — broad exception swallowing
# ----------------------------------------------------------------------
class TestBroadExcept:
    def test_flags_bare_except(self):
        src = """
        def step(net, msg):
            try:
                net.deliver(msg)
            except:
                pass
        """
        assert rules(src, SIM) == ["EXC001"]

    def test_flags_except_exception(self):
        src = """
        def route(net, key):
            try:
                return net.route(key)
            except Exception:
                return None
        """
        assert rules(src, DHT) == ["EXC001"]

    def test_flags_exception_inside_tuple(self):
        src = """
        def step(net, msg):
            try:
                net.deliver(msg)
            except (ValueError, Exception):
                pass
        """
        assert rules(src, SIM) == ["EXC001"]

    def test_specific_exception_stays_silent(self):
        src = """
        def step(net, msg):
            try:
                net.deliver(msg)
            except KeyError:
                pass
        """
        assert rules(src, SIM) == []

    def test_reraising_handler_stays_silent(self):
        src = """
        def step(net, msg):
            try:
                net.deliver(msg)
            except Exception as exc:
                log(exc)
                raise
        """
        assert rules(src, SIM) == []

    def test_out_of_scope_module_stays_silent(self):
        src = """
        def load(path):
            try:
                return parse(path)
            except Exception:
                return None
        """
        assert rules(src, ANALYSIS) == []

    def test_pragma_alias_suppresses(self):
        src = (
            "def step(net, msg):\n"
            "    try:\n"
            "        net.deliver(msg)\n"
            "    except Exception:  # lint: allow-broad-except -- chaos harness records all faults\n"
            "        pass\n"
        )
        assert rules(src, SIM) == []


# ----------------------------------------------------------------------
# LNT002 — unused suppressions
# ----------------------------------------------------------------------
class TestUnusedSuppression:
    def test_stale_reasoned_pragma_is_flagged(self):
        src = "x = 1  # lint: allow-wallclock -- stale, the call was removed\n"
        assert rules(src, SIM) == ["LNT002"]

    def test_used_pragma_is_not_flagged(self):
        src = (
            "import time\n"
            "t = time.time()  # lint: allow-wallclock -- phase timing only\n"
        )
        assert rules(src, SIM) == []

    def test_reasonless_pragma_reports_lnt100_not_lnt002(self):
        src = "x = 1  # lint: allow-wallclock\n"
        assert rules(src, SIM) == ["LNT100"]

    def test_select_subset_does_not_misreport(self):
        # When the pragma names a rule that is not active in this run,
        # "unused" cannot be decided, so LNT002 must stay silent.
        from repro.lint.determinism import RngChecker

        src = "x = 1  # lint: allow-wallclock -- covered by the full run\n"
        findings = lint_source(SIM, src, [RngChecker()])
        assert [f.rule for f in findings] == []

    def test_lnt002_is_itself_suppressible(self):
        # Naming lnt002 alongside the kept rule keeps a deliberately
        # dormant pragma (e.g. platform-specific) out of the report.
        src = "x = 1  # lint: allow-wallclock,lnt002 -- fires only on win32 builds\n"
        assert rules(src, SIM) == []


# ----------------------------------------------------------------------
# test-grade relaxations for benchmarks/ and examples/
# ----------------------------------------------------------------------
class TestRelaxedScopes:
    def test_examples_may_seed_rng_explicitly(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert rules(src, EXAMPLES) == []

    def test_examples_may_not_draw_os_entropy(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules(src, EXAMPLES) == ["DET001"]

    def test_benchmarks_skip_hot_path_rules(self):
        src = """
        def build(peers):
            return [PeerInfo(p) for p in peers]
        """
        assert rules(src, Path("benchmarks/bench_fixture.py")) == []


# ----------------------------------------------------------------------
# project facts
# ----------------------------------------------------------------------
class TestProjectFacts:
    def _facts(self, pairs):
        return build_facts(pairs)

    def test_import_graph_and_hot_closure(self):
        facts = self._facts(
            [
                (Path("src/repro/dht/chord.py"), "from repro.util.ids import IdSpace\n"),
                (Path("src/repro/util/ids.py"), "import math\n"),
                (Path("src/repro/analysis/plots.py"), "from repro.util.ids import IdSpace\n"),
            ]
        )
        assert facts.is_hot("repro.dht.chord")
        assert not facts.is_hot("repro.analysis.plots")
        assert "repro.util.ids" in facts.hot_closure()
        assert facts.importers_of("repro.util.ids") == {
            "repro.dht.chord", "repro.analysis.plots",
        }

    def test_rebuild_caller_closure_is_transitive(self):
        facts = self._facts(
            [
                (
                    Path("src/repro/core/net.py"),
                    textwrap.dedent(
                        """
                        class Net:
                            def _rebuild(self):
                                pass

                            def remove_peer(self, p):
                                self._rebuild()

                            def evict(self, p):
                                self.remove_peer(p)
                        """
                    ),
                )
            ]
        )
        assert {"_rebuild", "remove_peer", "evict"} <= facts.rebuild_callers

    def test_dataclass_registry(self):
        facts = self._facts(
            [
                (
                    Path("src/repro/core/types.py"),
                    "from dataclasses import dataclass\n"
                    "@dataclass\nclass Row:\n    x: int\n"
                    "class Plain:\n    pass\n",
                )
            ]
        )
        assert "Row" in facts.dataclass_names
        assert "Plain" in facts.project_classes
        assert "Plain" not in facts.dataclass_names
