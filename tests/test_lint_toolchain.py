"""Tests for the reprolint toolchain: SARIF, baselines, jobs, explain.

Covers the SARIF 2.1.0 document shape (the subset code scanning relies
on), baseline round-trips with fingerprint stability under line shifts,
``--jobs`` parity with the serial path, ``--explain``, and the
``--max-seconds`` runtime budget.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_CHECKERS, lint_source
from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_paths
from repro.lint.explain import ENGINE_RULES, explain, rule_catalog
from repro.lint.sarif import SARIF_VERSION, to_sarif

CORE = Path("src/repro/core/_fixture.py")
SIM = Path("src/repro/sim/_fixture.py")

BAD_RNG = "import numpy as np\nrng = np.random.default_rng(1)\n"
BAD_CLOCK = "import time\nt = time.time()\n"


def _write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_every_finding_is_stamped(self):
        findings = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        assert findings and all(len(f.fingerprint) == 20 for f in findings)

    def test_stable_under_line_shifts(self):
        before = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        shifted = "X = 0\nY = 1\n" + BAD_CLOCK
        after = lint_source(SIM, shifted, ALL_CHECKERS)
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_changes_when_flagged_line_changes(self):
        a = lint_source(SIM, "import time\nt = time.time()\n", ALL_CHECKERS)
        b = lint_source(SIM, "import time\nu = time.time()\n", ALL_CHECKERS)
        assert a[0].fingerprint != b[0].fingerprint

    def test_duplicate_lines_get_distinct_fingerprints(self):
        src = "import time\nt = time.time()\nt = time.time()\n"
        findings = lint_source(SIM, src, ALL_CHECKERS)
        fps = [f.fingerprint for f in findings]
        assert len(fps) == 2 and fps[0] != fps[1]

    def test_differs_across_modules(self):
        a = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        b = lint_source(Path("src/repro/core/other.py"), BAD_CLOCK, ALL_CHECKERS)
        assert a[0].fingerprint != b[0].fingerprint


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        bl = tmp_path / "baseline.json"
        write_baseline(bl, findings)
        fingerprints = load_baseline(bl)
        assert fingerprints == {f.fingerprint for f in findings}
        new, baselined = partition(findings, fingerprints)
        assert new == [] and baselined == len(findings)

    def test_partition_keeps_unknown_findings(self):
        findings = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        new, baselined = partition(findings, {"not-a-real-fingerprint"})
        assert new == findings and baselined == 0

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text('{"version": 1, "fingerprints": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_cli_baseline_flow(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/sim/bad.py", BAD_CLOCK)
        bl = tmp_path / "baseline.json"
        assert lint_main([str(tmp_path / "src"), "--write-baseline", str(bl)]) == 0
        # Baselined finding no longer fails the run...
        assert lint_main([str(tmp_path / "src"), "--baseline", str(bl)]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...but a new finding alongside it still does.
        _write(tmp_path, "src/repro/sim/worse.py", BAD_RNG)
        assert lint_main([str(tmp_path / "src"), "--baseline", str(bl)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py" not in out

    def test_cli_unreadable_baseline_is_usage_error(self, tmp_path):
        _write(tmp_path, "src/repro/sim/bad.py", BAD_CLOCK)
        bl = tmp_path / "nonsense.json"
        bl.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            lint_main([str(tmp_path / "src"), "--baseline", str(bl)])
        assert exc.value.code == 2

    def test_baseline_survives_line_shift(self, tmp_path):
        target = _write(tmp_path, "src/repro/sim/bad.py", BAD_CLOCK)
        bl = tmp_path / "baseline.json"
        assert lint_main([str(tmp_path / "src"), "--write-baseline", str(bl)]) == 0
        target.write_text("# new header comment\n" + BAD_CLOCK, encoding="utf-8")
        assert lint_main([str(tmp_path / "src"), "--baseline", str(bl)]) == 0


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
class TestSarif:
    def _doc(self, findings=None):
        findings = findings if findings is not None else lint_source(
            SIM, BAD_CLOCK, ALL_CHECKERS
        )
        return to_sarif(findings, ALL_CHECKERS, root=Path.cwd())

    def test_top_level_shape(self):
        doc = self._doc()
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_rule_catalog_covers_all_rules(self):
        doc = self._doc()
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        ids = {r["id"] for r in driver["rules"]}
        expected = {c.rule for c in ALL_CHECKERS} | set(ENGINE_RULES)
        assert ids == expected
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"

    def test_results_reference_rules_by_index(self):
        doc = self._doc()
        run = doc["runs"][0]
        assert run["results"], "fixture produced no findings"
        for result in run["results"]:
            rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1
            assert region["endLine"] >= region["startLine"]

    def test_results_carry_stable_fingerprints(self):
        findings = lint_source(SIM, BAD_CLOCK, ALL_CHECKERS)
        doc = self._doc(findings)
        fps = [
            r["partialFingerprints"]["reprolintFingerprint/v1"]
            for r in doc["runs"][0]["results"]
        ]
        assert fps == [f.fingerprint for f in findings]

    def test_uri_base_id_wiring(self):
        doc = self._doc()
        run = doc["runs"][0]
        assert run["originalUriBaseIds"]["SRCROOT"]["uri"].startswith("file://")
        loc = run["results"][0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert not loc["artifactLocation"]["uri"].startswith("/")

    def test_document_is_json_serialisable(self):
        json.dumps(self._doc())

    def test_cli_writes_sarif_file(self, tmp_path):
        _write(tmp_path, "src/repro/sim/bad.py", BAD_CLOCK)
        out = tmp_path / "artifacts" / "lint.sarif"
        assert lint_main([str(tmp_path / "src"), "--sarif", str(out), "-q"]) == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["DET002"]


# ----------------------------------------------------------------------
# parallel execution
# ----------------------------------------------------------------------
class TestJobs:
    def test_parallel_matches_serial(self, tmp_path):
        _write(tmp_path, "src/repro/sim/a.py", BAD_CLOCK)
        _write(tmp_path, "src/repro/core/b.py", BAD_RNG)
        _write(tmp_path, "src/repro/dht/c.py", "def f(d):\n    return list(d.keys())\n")
        _write(tmp_path, "src/repro/util/d.py", "X = 1\n")
        serial = lint_paths([tmp_path / "src"], ALL_CHECKERS, jobs=1)
        parallel = lint_paths([tmp_path / "src"], ALL_CHECKERS, jobs=2)
        assert [f.render() for f in serial] == [f.render() for f in parallel]
        assert [f.fingerprint for f in serial] == [f.fingerprint for f in parallel]

    def test_jobs_auto_resolves(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        assert lint_main([str(tmp_path / "src"), "--jobs", "auto", "-q"]) == 0

    def test_invalid_jobs_is_usage_error(self, tmp_path):
        _write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        for bad in ("0", "-2", "many"):
            with pytest.raises(SystemExit) as exc:
                lint_main([str(tmp_path / "src"), "--jobs", bad])
            assert exc.value.code == 2


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------
class TestExplain:
    def test_catalog_has_all_rules(self):
        catalog = rule_catalog(ALL_CHECKERS)
        assert {c.rule for c in ALL_CHECKERS} <= set(catalog)
        assert set(ENGINE_RULES) <= set(catalog)

    def test_explain_by_id_alias_and_case(self):
        by_id = explain("DET003", ALL_CHECKERS)
        assert by_id and "unordered" in by_id.lower()
        assert explain("det003", ALL_CHECKERS) == by_id
        assert explain("unsorted", ALL_CHECKERS) == by_id

    def test_explain_engine_rule(self):
        doc = explain("LNT002", ALL_CHECKERS)
        assert doc and "suppress" in doc.lower()

    def test_unknown_rule_returns_none(self):
        assert explain("NOPE99", ALL_CHECKERS) is None

    def test_cli_explain_exit_codes(self, capsys):
        assert lint_main(["--explain", "PERF002"]) == 0
        assert "rebuild" in capsys.readouterr().out.lower()
        with pytest.raises(SystemExit) as exc:
            lint_main(["--explain", "NOPE99"])
        assert exc.value.code == 2


# ----------------------------------------------------------------------
# runtime budget
# ----------------------------------------------------------------------
class TestMaxSeconds:
    def test_generous_budget_passes(self, tmp_path):
        _write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        assert lint_main([str(tmp_path / "src"), "--max-seconds", "300", "-q"]) == 0

    def test_zero_budget_fails_even_when_clean(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        assert lint_main([str(tmp_path / "src"), "--max-seconds", "0"]) == 1
        assert "budget exceeded" in capsys.readouterr().out
