"""Tests for ring names/ids, ring tables, and the directory."""

import numpy as np
import pytest

from repro.core.ring import (
    RingTable,
    RingTableDirectory,
    ring_id,
    ring_name,
)
from repro.util.ids import IdSpace
from repro.util.intervals import ring_distance


class TestNamesAndIds:
    def test_ring_name_identity(self):
        assert ring_name("012") == "012"

    def test_ring_name_rejects_empty(self):
        with pytest.raises(ValueError):
            ring_name("")

    def test_ring_id_deterministic_and_in_space(self):
        space = IdSpace(16)
        rid = ring_id(space, "012")
        assert rid == ring_id(space, "012")
        assert 0 <= rid < space.size

    def test_ring_id_differs_from_key_hash(self):
        space = IdSpace(32)
        assert ring_id(space, "012") != space.hash_key("012")


class TestRingTable:
    def test_extremes(self):
        space = IdSpace(16)
        ids = np.asarray([5, 17, 200, 900], dtype=np.uint64)
        peers = np.asarray([3, 1, 0, 2])
        table = RingTable.from_members(space, "01", ids, peers)
        assert table.largest == (900, 2)
        assert table.second_largest == (200, 0)
        assert table.smallest == (5, 3)
        assert table.second_smallest == (17, 1)
        assert table.ringname == "01"
        assert table.ringid == ring_id(space, "01")

    def test_small_rings_repeat_entries(self):
        space = IdSpace(16)
        table = RingTable.from_members(
            space, "0", np.asarray([7], dtype=np.uint64), np.asarray([4])
        )
        assert table.largest == table.smallest == (7, 4)
        assert len(table.entries()) == 4

    def test_bootstrap_peer(self):
        space = IdSpace(16)
        table = RingTable.from_members(
            space, "0", np.asarray([7, 9], dtype=np.uint64), np.asarray([4, 5])
        )
        assert table.bootstrap_peer() == 4

    def test_would_update(self):
        space = IdSpace(16)
        ids = np.asarray([10, 20, 30, 40], dtype=np.uint64)
        table = RingTable.from_members(space, "0", ids, np.arange(4))
        assert table.would_update(50)  # new largest
        assert table.would_update(35)  # new second largest
        assert table.would_update(5)  # new smallest
        assert table.would_update(15)  # new second smallest
        assert not table.would_update(25)  # middle of the pack


class TestDirectory:
    @pytest.fixture()
    def directory(self):
        return RingTableDirectory(IdSpace(16), replicas=2)

    def test_publish_and_fetch(self, directory):
        table = directory.publish(
            "01", np.asarray([3, 9], dtype=np.uint64), np.asarray([0, 1])
        )
        assert directory.table_of("01") is table
        assert directory.names() == ["01"]

    def test_drop(self, directory):
        directory.publish("01", np.asarray([3], dtype=np.uint64), np.asarray([0]))
        directory.drop("01")
        with pytest.raises(KeyError):
            directory.table_of("01")

    def test_host_is_numerically_closest(self, directory):
        space = IdSpace(16)
        rng = np.random.default_rng(2)
        ids = np.sort(space.sample_unique_ids(40, rng))
        peers = np.arange(40)
        host = directory.host_of("012", ids, peers)
        rid = ring_id(space, "012")
        dists = [ring_distance(rid, int(i), space.size) for i in ids]
        assert dists[host] == min(dists)  # peer index == sorted position here

    def test_replica_hosts_are_successors(self, directory):
        space = IdSpace(16)
        ids = np.sort(space.sample_unique_ids(10, np.random.default_rng(1)))
        peers = np.arange(10)
        hosts = directory.replica_hosts("012", ids, peers)
        assert len(hosts) == 3
        primary = hosts[0]
        assert hosts[1] == (primary + 1) % 10
        assert hosts[2] == (primary + 2) % 10

    def test_replicas_capped_by_ring_size(self):
        directory = RingTableDirectory(IdSpace(16), replicas=5)
        ids = np.asarray([4, 90], dtype=np.uint64)
        hosts = directory.replica_hosts("0", ids, np.arange(2))
        assert len(hosts) == 2
