"""Tests for the Pastry baseline."""

import numpy as np
import pytest

from repro.dht.pastry import PastryNetwork, PastryParams
from repro.util.ids import IdSpace
from repro.util.intervals import ring_distance


@pytest.fixture(scope="module")
def net():
    space = IdSpace(16)
    ids = space.sample_unique_ids(200, np.random.default_rng(0))
    return PastryNetwork(space, ids, seed=1)


class TestConstruction:
    def test_digit_width_must_divide_bits(self):
        space = IdSpace(10)
        ids = space.sample_unique_ids(8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            PastryNetwork(space, ids, params=PastryParams(b=4))

    def test_rejects_duplicates(self):
        space = IdSpace(16)
        with pytest.raises(ValueError):
            PastryNetwork(space, np.asarray([5, 5], dtype=np.uint64))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PastryParams(b=0)
        with pytest.raises(ValueError):
            PastryParams(leaf_set=3)
        with pytest.raises(ValueError):
            PastryParams(pns_samples=0)


class TestOwnership:
    def test_owner_is_numerically_closest(self, net, rng):
        for _ in range(200):
            k = int(rng.integers(0, net.space.size))
            owner = net.owner_of(k)
            d_owner = ring_distance(k, net.id_of(owner), net.space.size)
            for p in range(net.n_peers):
                assert d_owner <= ring_distance(k, net.id_of(p), net.space.size)

    def test_differs_from_chord_successor_rule(self, net):
        """Pastry delivers to the closest node in either direction —
        for a key just past a node, that node (not its successor) wins."""
        ids = np.sort(net._sorted_ids)
        a, b = int(ids[0]), int(ids[1])
        key = (a + 1) % net.space.size
        if ring_distance(key, a, net.space.size) < ring_distance(key, b, net.space.size):
            assert net.id_of(net.owner_of(key)) == a


class TestLeafSets:
    def test_leaf_set_members_closest_by_position(self, net):
        leafs = net.leaf_set(0)
        assert len(leafs) == net.params.leaf_set
        assert 0 not in leafs

    def test_shared_prefix_level(self, net):
        assert net.shared_prefix_level(0x1234, 0x1235) == 3
        assert net.shared_prefix_level(0x1234, 0x2234) == 0
        assert net.shared_prefix_level(0x1234, 0x1234) == 4


class TestRouting:
    def test_reaches_owner(self, net, rng):
        for _ in range(300):
            s = int(rng.integers(0, net.n_peers))
            k = int(rng.integers(0, net.space.size))
            r = net.route(s, k)
            assert r.owner == net.owner_of(k)
            assert r.path[0] == s and r.path[-1] == r.owner

    def test_hops_logarithmic_base_16(self, net, rng):
        hops = [
            net.route(int(rng.integers(0, 200)), int(rng.integers(0, net.space.size))).hops
            for _ in range(400)
        ]
        assert np.mean(hops) <= np.log(200) / np.log(16) + 1.5

    def test_zero_hops_when_source_owns(self, net):
        k = net.id_of(5)
        assert net.route(5, k).hops == 0


class TestPNS:
    def test_entries_prefer_low_latency(self):
        """With PNS, routing-table entries should beat the candidate
        average latency."""
        from repro.topology.latency import CoordinateLatencyModel

        space = IdSpace(16)
        rng = np.random.default_rng(3)
        n = 150
        ids = space.sample_unique_ids(n, rng)
        coords = rng.uniform(0, 200, size=(n, 2))
        latency = CoordinateLatencyModel(coords)
        net = PastryNetwork(space, ids, latency=latency, seed=4)
        gains = []
        for peer in range(20):
            for (level, digit), entry in net._tables[peer].items():
                # Compare the chosen entry vs the average same-bucket node.
                bucket = [
                    q
                    for q in range(n)
                    if q != peer
                    and net.shared_prefix_level(net.id_of(q), net.id_of(peer)) >= level
                    and net._digit(net.id_of(q), level) == digit
                ]
                if len(bucket) >= 4:
                    chosen = latency.pair(peer, entry)
                    avg = np.mean([latency.pair(peer, q) for q in bucket])
                    gains.append(avg - chosen)
        assert np.mean(gains) > 0

    def test_routing_latency_beats_chord(self, small_deployment, small_latency):
        """On a topology, PNS Pastry must have lower per-hop latency
        than topology-blind Chord."""
        from repro.dht.chord import ChordNetwork

        attachment, peer_latency, space, ids = small_deployment
        pastry = PastryNetwork(space, ids, latency=peer_latency, seed=5)
        chord = ChordNetwork(space, ids, latency=peer_latency)
        rng = np.random.default_rng(6)
        p_lat = c_lat = 0.0
        for _ in range(250):
            s = int(rng.integers(0, 200))
            k = int(rng.integers(0, space.size))
            p_lat += pastry.route(s, k).latency_ms
            c_lat += chord.route(s, k).latency_ms
        assert p_lat < c_lat
