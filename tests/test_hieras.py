"""Tests for the HIERAS network — the paper's core contribution."""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.core.ring import ring_id
from repro.dht.chord import ChordNetwork
from repro.util.ids import IdSpace


def build_pair(n=120, depth=2, seed=5, bits=16, landmarks=4, **hieras_kw):
    """A (chord, hieras) pair over a synthetic latency-free deployment."""
    rng = np.random.default_rng(seed)
    space = IdSpace(bits)
    ids = space.sample_unique_ids(n, rng)
    distances = rng.uniform(0, 300, size=(n, landmarks))
    orders = BinningScheme.default_for_depth(max(depth, 2)).orders(distances)
    chord = ChordNetwork(space, ids)
    hieras = HierasNetwork(
        space, ids, landmark_orders=orders, depth=depth, **hieras_kw
    )
    return chord, hieras


class TestConstruction:
    def test_depth_bounds(self):
        with pytest.raises(ValueError):
            build_pair(depth=5)
        rng = np.random.default_rng(0)
        space = IdSpace(16)
        ids = space.sample_unique_ids(10, rng)
        orders = BinningScheme.default_for_depth(2).orders(
            rng.uniform(0, 300, size=(10, 3))
        )
        with pytest.raises(ValueError):
            HierasNetwork(space, ids, landmark_orders=orders, depth=3)

    def test_orders_must_cover_all_peers(self):
        rng = np.random.default_rng(0)
        space = IdSpace(16)
        ids = space.sample_unique_ids(10, rng)
        orders = BinningScheme.default_for_depth(2).orders(
            rng.uniform(0, 300, size=(9, 3))
        )
        with pytest.raises(ValueError):
            HierasNetwork(space, ids, landmark_orders=orders)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            build_pair(successor_list_policy="sometimes")


class TestRingStructure:
    def test_rings_partition_peers_each_layer(self):
        _, hieras = build_pair(n=150, depth=3)
        all_peers = set(range(150))
        for layer in range(2, hieras.depth + 1):
            seen: set[int] = set()
            for ring in hieras.rings_at_layer(layer).values():
                members = set(int(p) for p in ring.peers)
                assert not (seen & members)
                seen |= members
            assert seen == all_peers

    def test_ring_members_share_name(self):
        _, hieras = build_pair(n=100, depth=2)
        for name, ring in hieras.rings_at_layer(2).items():
            for p in ring.peers:
                assert hieras.ring_name_of(int(p), 2) == name

    def test_deeper_rings_nest(self):
        _, hieras = build_pair(n=150, depth=3)
        for p in range(150):
            inner = set(int(x) for x in hieras.ring_of(p, 3).peers)
            outer = set(int(x) for x in hieras.ring_of(p, 2).peers)
            assert inner <= outer
            assert p in inner

    def test_global_ring_is_everyone(self):
        _, hieras = build_pair(n=80)
        assert len(hieras.ring_of(0, 1)) == 80

    def test_ring_sizes_sum(self):
        _, hieras = build_pair(n=150, depth=3)
        for layer in (2, 3):
            assert hieras.ring_sizes(layer).sum() == 150

    def test_directory_published_for_every_ring(self):
        _, hieras = build_pair(n=100)
        assert set(hieras.directory.names()) == set(hieras.rings_at_layer(2))

    def test_ring_table_host_is_live_peer(self):
        _, hieras = build_pair(n=100)
        for name in hieras.directory.names():
            host = hieras.ring_table_host(name)
            assert hieras.is_alive(host)

    def test_ring_id_of(self):
        _, hieras = build_pair(n=20)
        name = hieras.ring_name_of(0, 2)
        assert hieras.ring_id_of(name) == ring_id(hieras.space, name)


class TestRouting:
    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_owner_agrees_with_chord(self, depth):
        chord, hieras = build_pair(n=150, depth=depth, seed=depth)
        rng = np.random.default_rng(depth)
        for _ in range(300):
            s = int(rng.integers(0, 150))
            k = int(rng.integers(0, hieras.space.size))
            rc, rh = chord.route(s, k), hieras.route(s, k)
            assert rh.owner == rc.owner
            assert rh.path[-1] == rh.owner

    @pytest.mark.parametrize("policy", ["off", "transitions", "always"])
    def test_all_policies_reach_owner(self, policy):
        chord, hieras = build_pair(n=120, successor_list_policy=policy)
        rng = np.random.default_rng(9)
        for _ in range(150):
            s = int(rng.integers(0, 120))
            k = int(rng.integers(0, hieras.space.size))
            assert hieras.route(s, k).owner == chord.owner_of(k)

    def test_hops_per_layer_structure(self):
        _, hieras = build_pair(n=150, depth=3)
        rng = np.random.default_rng(1)
        for _ in range(100):
            r = hieras.route(int(rng.integers(0, 150)), int(rng.integers(0, hieras.space.size)))
            assert len(r.hops_per_layer) == 3  # lowest..global
            assert sum(r.hops_per_layer) == r.hops
            assert r.low_layer_hops == sum(r.hops_per_layer[:-1])
            assert r.top_layer_hops == r.hops_per_layer[-1]

    def test_source_owning_key_routes_zero_hops(self):
        _, hieras = build_pair(n=100)
        key = hieras.id_of(13)
        r = hieras.route(13, key)
        assert r.hops == 0
        assert r.owner == 13

    def test_path_is_connected_peers(self):
        _, hieras = build_pair(n=100)
        r = hieras.route(5, 12345)
        assert all(hieras.is_alive(p) for p in r.path)

    def test_lower_hops_stay_in_source_ring(self):
        """Every hop of the lowest loop lands inside the source's ring."""
        _, hieras = build_pair(n=150, depth=2)
        rng = np.random.default_rng(3)
        for _ in range(100):
            s = int(rng.integers(0, 150))
            r = hieras.route(s, int(rng.integers(0, hieras.space.size)))
            ring_members = set(int(p) for p in hieras.ring_of(s, 2).peers)
            low = r.hops_per_layer[0]
            for p in r.path[: low + 1]:
                assert p in ring_members

    def test_single_ring_degenerates_to_chord_plus_layers(self):
        """If binning puts everyone in one ring, routes match Chord's."""
        rng = np.random.default_rng(0)
        space = IdSpace(16)
        ids = space.sample_unique_ids(80, rng)
        distances = np.full((80, 4), 500.0)  # all level 2 everywhere
        orders = BinningScheme.default_for_depth(2).orders(distances)
        hieras = HierasNetwork(
            space, ids, landmark_orders=orders, depth=2, successor_list_policy="off"
        )
        chord = ChordNetwork(space, ids)
        assert len(hieras.rings_at_layer(2)) == 1
        for _ in range(100):
            s = int(rng.integers(0, 80))
            k = int(rng.integers(0, space.size))
            assert hieras.route(s, k).path == chord.route(s, k).path


class TestMembership:
    def test_add_peer_joins_named_rings(self):
        _, hieras = build_pair(n=60)
        name = hieras.ring_name_of(0, 2)
        new_id = next(
            i for i in range(hieras.space.size) if i not in hieras.global_ring
        )
        p = hieras.add_peer(new_id, [name])
        assert hieras.ring_name_of(p, 2) == name
        assert p in set(int(x) for x in hieras.ring_of(0, 2).peers)

    def test_add_peer_validates_names_length(self):
        _, hieras = build_pair(n=60, depth=3)
        with pytest.raises(ValueError):
            hieras.add_peer(1, ["only-one-name"])

    def test_remove_peer_updates_rings(self):
        _, hieras = build_pair(n=60)
        victim = 7
        name = hieras.ring_name_of(victim, 2)
        before = len(hieras.rings_at_layer(2)[name])
        hieras.remove_peer(victim)
        rings = hieras.rings_at_layer(2)
        if name in rings:
            assert len(rings[name]) == before - 1
        assert not hieras.is_alive(victim)

    def test_remove_last_ring_member_drops_ring_table(self):
        _, hieras = build_pair(n=60)
        sizes = {name: len(r) for name, r in hieras.rings_at_layer(2).items()}
        lonely = [n for n, s in sizes.items() if s == 1]
        if not lonely:
            pytest.skip("no singleton ring in this draw")
        name = lonely[0]
        victim = int(hieras.rings_at_layer(2)[name].peers[0])
        hieras.remove_peer(victim)
        assert name not in hieras.directory.names()

    def test_routing_correct_after_churn(self):
        chord, hieras = build_pair(n=80)
        rng = np.random.default_rng(4)
        for victim in (3, 11, 29):
            hieras.remove_peer(victim)
            chord.remove_peer(victim)
        new_id = next(
            i for i in range(hieras.space.size) if i not in hieras.global_ring
        )
        hieras.add_peer(new_id, [hieras.ring_name_of(0, 2)])
        chord.add_peer(new_id)
        for _ in range(150):
            s = int(rng.integers(0, 80))
            if not hieras.is_alive(s):
                continue
            k = int(rng.integers(0, hieras.space.size))
            assert hieras.route(s, k).owner == chord.owner_of(k)


class TestInspection:
    def test_table2_rows_shape(self):
        _, hieras = build_pair(n=60, depth=2, bits=8)
        rows = hieras.table2_rows(0)
        assert len(rows) == 8
        for row in rows:
            assert len(row.successors) == 2

    def test_table2_layer2_successors_in_own_ring(self):
        _, hieras = build_pair(n=60, depth=2, bits=8)
        for peer in range(10):
            my_ring = hieras.ring_name_of(peer, 2)
            for row in hieras.table2_rows(peer):
                _, (l2_id, l2_peer, l2_ring) = row.successors
                assert l2_ring == my_ring
                assert hieras.ring_name_of(l2_peer, 2) == my_ring

    def test_finger_table_matches_ring(self):
        _, hieras = build_pair(n=60)
        entries = hieras.finger_table(0, 2)
        ring = hieras.ring_of(0, 2)
        for e in entries:
            assert e.node_id == int(ring.ids[ring.successor_pos(e.start)])

    def test_distinct_finger_count_lower_layers_smaller(self):
        """§3.4: lower-layer finger tables hold fewer distinct nodes."""
        _, hieras = build_pair(n=200, depth=2)
        lower = np.mean([hieras.distinct_finger_count(p, 2) for p in range(25)])
        top = np.mean([hieras.distinct_finger_count(p, 1) for p in range(25)])
        assert lower <= top

    def test_maintenance_summary_keys(self):
        _, hieras = build_pair(n=100, depth=3)
        summary = hieras.maintenance_summary(sample=16)
        assert summary["depth"] == 3.0
        assert summary["n_rings"] >= 3.0
        assert summary["avg_distinct_fingers_layer1"] > 0
        assert "avg_distinct_fingers_layer3" in summary


class TestExplainRoute:
    def test_narration_structure(self):
        _, hieras = build_pair(n=80, seed=3)
        text = hieras.explain_route(0, 12345)
        assert text.startswith("route key=12345 from peer 0")
        assert "owner: peer" in text
        assert "layer 2" in text or "no hops needed" in text

    def test_hop_lines_match_route(self):
        _, hieras = build_pair(n=80, seed=3)
        r = hieras.route(5, 999)
        text = hieras.explain_route(5, 999)
        arrow_lines = [ln for ln in text.splitlines() if "->" in ln]
        assert len(arrow_lines) == r.hops
