"""End-to-end integration tests: the full pipeline and the paper's
headline claims at test scale, plus fixed-seed regression anchors."""

import numpy as np
import pytest

from repro import quick_network
from repro.analysis.stats import collect_routes, ratio_percent
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace


class TestFacade:
    def test_quick_network_routes(self):
        bundle = quick_network(n_peers=128, seed=3)
        r = bundle.route(source=5, key=99)
        assert r.owner == bundle.hieras.owner_of(99)
        rc = bundle.route_chord(source=5, key=99)
        assert rc.owner == r.owner

    def test_quick_network_depth3(self):
        bundle = quick_network(n_peers=96, depth=3, seed=4)
        r = bundle.route(source=0, key=123456)
        assert len(r.hops_per_layer) == 3

    def test_docstring_example(self):
        import doctest

        import repro._facade as facade

        failures, _ = doctest.testmod(facade).failed, None
        assert failures == 0


class TestHeadlineClaims:
    """The paper's three headline numbers, at reduced scale."""

    @pytest.fixture(scope="class")
    def samples(self):
        bundle = build_bundle(SimConfig(n_peers=1500, seed=42))
        trace = make_trace(bundle, 6000)
        return (
            collect_routes(bundle.chord, trace),
            collect_routes(bundle.hieras, trace),
        )

    def test_latency_halved(self, samples):
        chord, hieras = samples
        ratio = ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms)
        assert ratio < 75.0  # paper: 51.8% on TS

    def test_hops_comparable(self, samples):
        chord, hieras = samples
        delta = abs(hieras.mean_hops - chord.mean_hops) / chord.mean_hops
        assert delta < 0.12  # paper: +0.78%..+3.40%

    def test_majority_of_hops_in_lower_rings(self, samples):
        _, hieras = samples
        assert hieras.low_layer_hop_share > 0.55  # paper: 71.38%

    def test_lower_rings_have_cheaper_links(self, samples):
        _, hieras = samples
        low = hieras.mean_link_delay(layer="low")
        top = hieras.mean_link_delay(layer="top")
        assert low < 0.6 * top  # paper: 35.23%


class TestCrossStackRouteEquality:
    def test_static_stacks_agree_on_every_owner(self):
        bundle = build_bundle(SimConfig(n_peers=400, seed=7))
        rng = np.random.default_rng(0)
        for _ in range(400):
            s = int(rng.integers(0, 400))
            k = int(rng.integers(0, bundle.space.size))
            assert bundle.chord.route(s, k).owner == bundle.hieras.route(s, k).owner

    def test_hieras_lowest_loop_equals_ring_local_chord(self):
        """The lowest HIERAS loop is exactly Chord's predecessor walk
        restricted to the source's ring."""
        bundle = build_bundle(SimConfig(n_peers=400, seed=7))
        hieras = bundle.hieras
        rng = np.random.default_rng(1)
        for _ in range(100):
            s = int(rng.integers(0, 400))
            k = int(rng.integers(0, bundle.space.size))
            r = hieras.route(s, k)
            ring = hieras.ring_of(s, 2)
            pos = ring.pos_of_id(hieras.id_of(s))
            expected = ring.predecessor_route(pos, bundle.space.wrap(k))
            low = r.hops_per_layer[0]
            assert [int(ring.peers[p]) for p in expected] == r.path[: low + 1]


class TestSeededRegression:
    """Anchor a full pipeline output; any drift in generators, binning
    or routing shows up here before it silently changes EXPERIMENTS.md."""

    def test_pinned_metrics(self):
        bundle = build_bundle(SimConfig(n_peers=600, seed=2024))
        trace = make_trace(bundle, 2000)
        chord = collect_routes(bundle.chord, trace)
        hieras = collect_routes(bundle.hieras, trace)
        # Loose windows: these assert stability, not exact floats.
        assert 5.0 < chord.mean_hops < 7.5
        assert 5.0 < hieras.mean_hops < 7.5
        assert ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms) < 75.0
        # Exact anchors for the deterministic parts:
        assert int(bundle.node_ids[0]) == int(bundle.node_ids[0])
        a = build_bundle(SimConfig(n_peers=600, seed=2024))
        tr2 = make_trace(a, 2000)
        np.testing.assert_array_equal(tr2.keys, trace.keys)
        h2 = collect_routes(a.hieras, tr2)
        np.testing.assert_array_equal(h2.hops, hieras.hops)
        np.testing.assert_allclose(h2.latency_ms, hieras.latency_ms)
