"""Tests for parallel sweep execution."""

import pytest

from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.sweep import SweepSpec, run_sweep


@pytest.fixture(scope="module")
def spec():
    return SweepSpec(
        models=("ts",), sizes=(200, 300), landmarks=(4,), depths=(2,),
        seeds=(1,), n_requests=300,
    )


class TestParallelSweep:
    def test_single_worker_matches_serial(self, spec):
        serial = run_sweep(spec)
        parallel = run_sweep_parallel(spec, workers=1)
        assert parallel == serial

    def test_two_workers_match_serial(self, spec):
        """Determinism: results are independent of worker placement."""
        serial = run_sweep(spec)
        parallel = run_sweep_parallel(spec, workers=2)
        assert parallel == serial

    def test_invalid_cells_skipped(self):
        bad = SweepSpec(models=("inet",), sizes=(200,), n_requests=100)
        notes = []
        rows = run_sweep_parallel(bad, workers=1, progress=notes.append)
        assert rows == []
        assert any("skip" in n for n in notes)

    def test_workers_validation(self, spec):
        with pytest.raises(ValueError):
            run_sweep_parallel(spec, workers=0)

    def test_progress_reported(self, spec):
        notes = []
        run_sweep_parallel(spec, workers=1, progress=notes.append)
        assert len(notes) == 2
