"""Shared fixtures: small deterministic deployments for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.topology.attach import OverlayAttachment, attach_overlay, place_landmarks
from repro.topology.latency import latency_model_for
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.util.ids import IdSpace
from repro.util.rng import RngFactory


@pytest.fixture(scope="session")
def small_topology():
    """A ~320-router transit-stub topology (session-cached)."""
    return generate_transit_stub(TransitStubParams.for_size(320), seed=7)


@pytest.fixture(scope="session")
def small_latency(small_topology):
    return latency_model_for(small_topology)


@pytest.fixture(scope="session")
def small_deployment(small_topology, small_latency):
    """(attachment, peer_latency, space, ids) for 200 peers, 4 landmarks."""
    rngs = RngFactory(11)
    routers = attach_overlay(small_topology, 200, seed=rngs.get("attach"))
    landmarks = place_landmarks(small_topology, small_latency, 4, seed=rngs.get("lm"))
    attachment = OverlayAttachment(small_topology, routers, landmarks)
    space = IdSpace(32)
    ids = space.sample_unique_ids(200, rngs.get("ids"))
    return attachment, attachment.peer_latency(small_latency), space, ids


@pytest.fixture(scope="session")
def small_networks(small_deployment, small_latency):
    """(chord, hieras) over the small deployment, depth 2."""
    attachment, peer_latency, space, ids = small_deployment
    chord = ChordNetwork(space, ids, latency=peer_latency)
    distances = attachment.landmark_distances(small_latency)
    orders = BinningScheme.default_for_depth(3).orders(distances)
    hieras = HierasNetwork(
        space, ids, latency=peer_latency, landmark_orders=orders, depth=2
    )
    return chord, hieras


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
