"""Tests for ``repro.lint.dataflow`` — CFGs, reaching defs, taint.

The dataflow engine underpins the flow-sensitive rules (DET003,
FLT001), so its semantics get direct coverage: CFG shapes for every
compound statement, reaching-definitions soundness on joins and loops,
and truth tables for the taint lattice's sources, sanitizers, and
propagation paths.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.dataflow import (
    CAPTURED,
    SET_ORDER,
    UNSEEDED_RNG,
    VIEW_ORDER,
    FunctionFlow,
    ReachingDefinitions,
    analyze_function,
    build_cfg,
    module_summaries,
)
from repro.lint.dataflow.cfg import TestExpr as BranchTest


def func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("fixture has no function")


def labels(taints) -> set[str]:
    return {t.label for t in taints}


def flow_of(source: str, self_class: str | None = None) -> FunctionFlow:
    tree = ast.parse(textwrap.dedent(source))
    return analyze_function(func(source), module_summaries(tree), self_class)


def return_element(flow: FunctionFlow, nth: int = 0) -> ast.Return:
    returns = [e for e in flow.cfg.elements() if isinstance(e, ast.Return)]
    return returns[nth]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCfgShapes:
    def test_straight_line_single_path(self):
        cfg = build_cfg(func("def f():\n    a = 1\n    b = 2\n    return b\n"))
        # entry -> body -> exit, no other edges
        assert cfg.blocks[cfg.entry].succs != []
        rendered = cfg.render()
        assert "loop" not in rendered and "except" not in rendered

    def test_if_else_joins(self):
        cfg = build_cfg(
            func(
                """
                def f(x):
                    if x:
                        a = 1
                    else:
                        a = 2
                    return a
                """
            )
        )
        joins = [b for b in cfg.blocks if b.label == "join"]
        assert len(joins) == 1
        assert len(joins[0].preds) == 2

    def test_if_without_else_has_fallthrough_edge(self):
        cfg = build_cfg(func("def f(x):\n    if x:\n        a = 1\n    return x\n"))
        joins = [b for b in cfg.blocks if b.label == "join"]
        assert len(joins[0].preds) == 2  # then-end + the test block itself

    def test_loop_has_back_edge_and_zero_iteration_edge(self):
        cfg = build_cfg(
            func("def f(xs):\n    for x in xs:\n        y = x\n    return 1\n")
        )
        head = next(b for b in cfg.blocks if b.label == "loop-head")
        after = next(b for b in cfg.blocks if b.label == "loop-after")
        body = next(b for b in cfg.blocks if b.label == "loop-body")
        assert after.idx in head.succs  # zero-iteration edge
        assert body.idx in head.succs
        assert head.idx in cfg.blocks[body.idx].succs  # back edge

    def test_break_edges_to_loop_after(self):
        cfg = build_cfg(
            func(
                """
                def f(xs):
                    while True:
                        if xs:
                            break
                        xs = g(xs)
                    return xs
                """
            )
        )
        after = next(b for b in cfg.blocks if b.label == "loop-after")
        assert len(after.preds) >= 2  # zero-iter/test-false edge + break edge

    def test_continue_edges_to_loop_head(self):
        cfg = build_cfg(
            func(
                """
                def f(xs):
                    for x in xs:
                        if x:
                            continue
                        y = x
                    return 1
                """
            )
        )
        head = next(b for b in cfg.blocks if b.label == "loop-head")
        # back edge from body end AND the continue edge
        assert len([p for p in head.preds if p != cfg.entry]) >= 2

    def test_try_except_edges_from_body_to_handler(self):
        cfg = build_cfg(
            func(
                """
                def f():
                    try:
                        a = risky()
                    except ValueError as exc:
                        a = 0
                    return a
                """
            )
        )
        handler = next(b for b in cfg.blocks if b.label == "except")
        body = next(b for b in cfg.blocks if b.label == "try-body")
        assert handler.idx in body.succs

    def test_try_finally_joins_all_exits(self):
        cfg = build_cfg(
            func(
                """
                def f():
                    try:
                        a = risky()
                    except ValueError:
                        a = 0
                    finally:
                        cleanup()
                    return a
                """
            )
        )
        fin = next(b for b in cfg.blocks if b.label == "finally")
        assert len(fin.preds) >= 2  # body fall-through + handler end

    def test_return_in_both_branches_kills_fallthrough(self):
        cfg = build_cfg(
            func(
                """
                def f(x):
                    if x:
                        return 1
                    else:
                        return 2
                """
            )
        )
        # Both paths edge to exit; no join block is reachable from them.
        exit_preds = cfg.blocks[cfg.exit].preds
        assert len(exit_preds) == 2

    def test_match_exhaustive_wildcard(self):
        cfg = build_cfg(
            func(
                """
                def f(x):
                    match x:
                        case 1:
                            return "one"
                        case _:
                            return "other"
                """
            )
        )
        # Exhaustive match with all-returning arms: exit has 2 preds,
        # and no no-arm-matched edge leaks to the join.
        assert len(cfg.blocks[cfg.exit].preds) == 2

    def test_nested_comprehension_and_walrus_are_elements(self):
        f = func(
            """
            def f(rows):
                flat = [y for xs in rows for y in xs]
                if (n := len(flat)) > 3:
                    return n
                return 0
            """
        )
        cfg = build_cfg(f)
        tests = [e for e in cfg.elements() if isinstance(e, BranchTest)]
        assert len(tests) == 1  # the if-condition (with the walrus inside)

    def test_with_binds_as_name(self):
        cfg = build_cfg(
            func(
                """
                def f(p):
                    with open(p) as fh:
                        data = fh.read()
                    return data
                """
            )
        )
        kinds = [type(e).__name__ for e in cfg.elements()]
        assert "WithBind" in kinds

    def test_module_level_cfg(self):
        tree = ast.parse("a = 1\nif a:\n    b = 2\n")
        cfg = build_cfg(tree)
        assert any(isinstance(e, BranchTest) for e in cfg.elements())


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------
class TestReachingDefinitions:
    def _rd(self, source: str) -> tuple[FunctionFlow, ReachingDefinitions]:
        f = func(source)
        cfg = build_cfg(f)
        params = tuple(a.arg for a in f.args.args)
        return cfg, ReachingDefinitions(cfg, params)

    def test_params_reach_entry(self):
        cfg, rd = self._rd("def f(a, b):\n    return a\n")
        ret = next(e for e in cfg.elements() if isinstance(e, ast.Return))
        assert {"a", "b"} <= rd.names_before(ret)

    def test_reassignment_kills_within_block(self):
        cfg, rd = self._rd("def f():\n    x = 1\n    x = 2\n    return x\n")
        ret = next(e for e in cfg.elements() if isinstance(e, ast.Return))
        defs = [d for d in rd.before_element(ret) if d.name == "x"]
        assert len(defs) == 1
        assert defs[0].line == 3  # the second assignment

    def test_branches_merge_both_definitions(self):
        cfg, rd = self._rd(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = next(e for e in cfg.elements() if isinstance(e, ast.Return))
        defs = [d for d in rd.before_element(ret) if d.name == "x"]
        assert len(defs) == 2  # both arms may reach (may-analysis)

    def test_loop_definition_reaches_own_head(self):
        cfg, rd = self._rd(
            """
            def f(xs):
                acc = 0
                for x in xs:
                    acc = acc + x
                return acc
            """
        )
        ret = next(e for e in cfg.elements() if isinstance(e, ast.Return))
        lines = {d.line for d in rd.before_element(ret) if d.name == "acc"}
        assert lines == {3, 5}  # initial def and the loop-body def

    def test_for_target_and_walrus_and_with_bind(self):
        cfg, rd = self._rd(
            """
            def f(xs, p):
                with open(p) as fh:
                    data = fh.read()
                for i, x in enumerate(xs):
                    pass
                if (m := len(xs)) > 0:
                    return m
                return data
            """
        )
        ret = [e for e in cfg.elements() if isinstance(e, ast.Return)][0]
        names = rd.names_before(ret)
        assert {"fh", "data", "i", "x", "m"} <= names

    def test_except_bind_and_match_capture(self):
        cfg, rd = self._rd(
            """
            def f(x):
                try:
                    y = risky()
                except ValueError as exc:
                    y = 0
                match x:
                    case [head, *tail]:
                        return head
                    case {**rest}:
                        return rest
                return y
            """
        )
        all_names = set()
        for e in cfg.elements():
            if isinstance(e, ast.Return):
                all_names |= rd.names_before(e)
        assert {"exc", "head", "tail", "rest"} <= all_names


# ----------------------------------------------------------------------
# taint lattice
# ----------------------------------------------------------------------
class TestTaintSources:
    def test_set_literal_and_constructor_and_comprehension(self):
        for expr in ("{1, 2}", "set(xs)", "frozenset(xs)", "{x for x in xs}"):
            flow = flow_of(f"def f(xs):\n    s = {expr}\n    return s\n")
            ret = return_element(flow)
            assert labels(flow.taint_of(ret.value, ret)) == {SET_ORDER}, expr

    def test_dict_views(self):
        for view in ("items", "keys", "values"):
            flow = flow_of(f"def f(d):\n    v = d.{view}()\n    return v\n")
            ret = return_element(flow)
            assert labels(flow.taint_of(ret.value, ret)) == {VIEW_ORDER}, view

    def test_unseeded_rng(self):
        flow = flow_of(
            "import numpy as np\ndef f():\n    r = np.random.default_rng()\n    return r\n"
        )
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == {UNSEEDED_RNG}

    def test_seeded_rng_is_clean(self):
        flow = flow_of(
            "import numpy as np\ndef f():\n    r = np.random.default_rng(7)\n    return r\n"
        )
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == set()

    def test_annotated_set_without_value(self):
        flow = flow_of("def f():\n    s: set[int]\n    return s\n")
        ret = return_element(flow)
        assert SET_ORDER in labels(flow.taint_of(ret.value, ret))


class TestTaintPropagation:
    def test_assignment_chain(self):
        flow = flow_of("def f():\n    s = {1}\n    t = s\n    u = t\n    return u\n")
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == {SET_ORDER}

    def test_materializer_captures(self):
        flow = flow_of("def f():\n    s = {1}\n    t = list(s)\n    return t\n")
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == {CAPTURED}

    def test_set_algebra_stays_set(self):
        flow = flow_of(
            "def f(a):\n    s = {1} | {2}\n    t = s.union({3})\n    u = s & a\n    return (s, t, u)\n"
        )
        ret = return_element(flow)
        env = flow.env_before(ret)
        assert labels(env["s"]) == {SET_ORDER}
        assert labels(env["t"]) == {SET_ORDER}
        assert labels(env["u"]) == {SET_ORDER}

    def test_augmented_set_union(self):
        flow = flow_of("def f(a):\n    s = {1}\n    s |= a\n    return s\n")
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == {SET_ORDER}

    def test_transparent_wrappers_propagate(self):
        flow = flow_of(
            "def f():\n    s = {1}\n    t = reversed(sorted(s))\n    u = enumerate(s)\n    return (t, u)\n"
        )
        ret = return_element(flow)
        env = flow.env_before(ret)
        assert labels(env["t"]) == set()  # sorted sanitized inside
        assert labels(env["u"]) == {SET_ORDER}  # enumerate is transparent

    def test_walrus_binds_taint(self):
        flow = flow_of("def f():\n    t = list(s := {1, 2})\n    return s\n")
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == {SET_ORDER}

    def test_branch_join_unions(self):
        flow = flow_of(
            """
            def f(c):
                if c:
                    s = {1}
                else:
                    s = [1]
                return s
            """
        )
        ret = return_element(flow)
        assert SET_ORDER in labels(flow.taint_of(ret.value, ret))

    def test_loop_fixpoint_converges(self):
        flow = flow_of(
            """
            def f(n):
                s = [0]
                for _ in range(n):
                    s = set(s)
                return s
            """
        )
        ret = return_element(flow)
        assert SET_ORDER in labels(flow.taint_of(ret.value, ret))


class TestTaintSanitizers:
    def test_sorted_and_reducers_clean(self):
        for call in ("sorted(s)", "sum(s)", "len(s)", "min(s)", "max(s)"):
            flow = flow_of(f"def f():\n    s = {{1}}\n    t = {call}\n    return t\n")
            ret = return_element(flow)
            assert labels(flow.taint_of(ret.value, ret)) == set(), call

    def test_reassignment_kills(self):
        flow = flow_of("def f():\n    s = {1}\n    s = sorted(s)\n    return s\n")
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == set()

    def test_for_target_binds_clean(self):
        flow = flow_of(
            "def f():\n    s = {1}\n    for x in s:\n        pass\n    return x\n"
        )
        ret = return_element(flow)
        assert labels(flow.taint_of(ret.value, ret)) == set()


class TestModuleSummaries:
    def test_direct_and_transitive_helpers(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def helper():
                    return {1, 2}

                def transitive():
                    return helper()

                def launder():
                    s = transitive()
                    return list(s)

                def clean():
                    return sorted(helper())
                """
            )
        )
        summaries = module_summaries(tree)
        assert summaries["helper"] == frozenset({SET_ORDER})
        assert summaries["transitive"] == frozenset({SET_ORDER})
        assert summaries["launder"] == frozenset({CAPTURED})
        assert summaries["clean"] == frozenset()

    def test_method_summaries_resolve_via_self(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class C:
                    def peers(self):
                        return set(self.known)

                    def snapshot(self):
                        p = self.peers()
                        return p
                """
            )
        )
        summaries = module_summaries(tree)
        assert summaries["C.peers"] == frozenset({SET_ORDER})
        assert summaries["C.snapshot"] == frozenset({SET_ORDER})
