"""Tests for the replicated KV store over ring DHTs."""

import numpy as np
import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.storage import DHTStore
from repro.util.ids import IdSpace


@pytest.fixture()
def chord_store():
    space = IdSpace(16)
    ids = space.sample_unique_ids(60, np.random.default_rng(0))
    net = ChordNetwork(space, ids)
    return net, DHTStore(net, replicas=2)


class TestPutGet:
    def test_roundtrip(self, chord_store):
        net, store = chord_store
        store.put("song.mp3", {"holders": [3, 9]})
        value, route = store.get(0, "song.mp3")
        assert value == {"holders": [3, 9]}
        assert route.owner == net.owner_of(net.space.hash_key("song.mp3"))

    def test_missing_key(self, chord_store):
        _, store = chord_store
        value, _ = store.get(0, "never-stored")
        assert value is None

    def test_replication_count(self, chord_store):
        _, store = chord_store
        store.put("a", 1)
        assert store.holder_count("a") == 3  # owner + 2 replicas

    def test_value_at_owner_and_successors(self, chord_store):
        net, store = chord_store
        key = store.put("b", 2)
        owner = net.owner_of(key)
        assert key in store.stored_keys(owner)
        for succ in net.successor_list(owner, 2):
            assert key in store.stored_keys(succ)

    def test_stats(self, chord_store):
        _, store = chord_store
        store.put("x", 1)
        store.get(5, "x")
        store.get(6, "x")
        assert store.stats.puts == 1
        assert store.stats.gets == 2
        assert store.stats.replicas_written == 3
        assert len(store) == 1

    def test_zero_replicas(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(20, np.random.default_rng(1))
        store = DHTStore(ChordNetwork(space, ids), replicas=0)
        store.put("solo", 1)
        assert store.holder_count("solo") == 1

    def test_negative_replicas_rejected(self, chord_store):
        net, _ = chord_store
        with pytest.raises(ValueError):
            DHTStore(net, replicas=-1)


class TestChurnRepair:
    def test_owner_crash_value_survives_via_replica(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        value, _ = store.get(0, "file")
        assert value == "data"

    def test_repair_promotes_replica_without_movement(self, chord_store):
        """With replicas, a crashed owner's successor already holds the
        key — repair re-establishes the replica count with zero owner
        rewrites (Chord/CFS's replica-promotion property)."""
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        moved = store.repair()
        assert moved == 0
        new_owner = net.owner_of(key)
        assert key in store.stored_keys(new_owner)
        assert store.holder_count("file") == 3

    def test_repair_moves_keys_without_replicas(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, np.random.default_rng(2))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0)
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        moved = store.repair()
        assert moved == 1
        assert store.stats.lost_after_repair == 1  # no replica survived
        assert key in store.stored_keys(net.owner_of(key))

    def test_join_triggers_ownership_transfer(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        if key in net.ring:  # astronomically unlikely at 16 bits / 60 peers
            pytest.skip("key collided with an existing node id")
        # A peer joining exactly at the key becomes its new owner.
        new_peer = net.add_peer(int(key))
        store.repair()
        assert key in store.stored_keys(new_peer)
        value, route = store.get(0, "file")
        assert value == "data" and route.owner == new_peer

    def test_total_loss_detected(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        holders = [owner] + net.successor_list(owner, 2)
        for peer in holders:
            store.drop_peer_state(peer)
        store.repair()
        assert store.stats.lost_after_repair == 1
        # The audit catalogue restored it.
        assert store.holder_count("file") == 3

    def test_repair_prunes_stale_copies(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        stale = (owner + 1) % net.n_peers
        store._stored.setdefault(stale, {})[key] = "data"  # simulate stale copy
        store.repair()
        replica_set = [net.owner_of(key)] + net.successor_list(net.owner_of(key), 2)
        for peer in range(net.n_peers):
            if peer not in replica_set:
                assert key not in store.stored_keys(peer)


class TestOverHieras:
    def test_store_over_hieras_network(self, small_networks):
        _, hieras = small_networks
        store = DHTStore(hieras, replicas=2)
        store.put("movie.avi", "meta")
        value, route = store.get(3, "movie.avi")
        assert value == "meta"
        assert route.owner == hieras.owner_of(hieras.space.hash_key("movie.avi"))
        assert store.holder_count("movie.avi") == 3


class TestDurabilityModes:
    def test_restore_lost_default_resurrects(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(30, np.random.default_rng(5))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0, restore_lost=True)
        key = store.put("f", "v")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        store.repair()
        value, _ = store.get(0, "f")
        assert value == "v"

    def test_realistic_mode_loses_data(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(30, np.random.default_rng(5))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0, restore_lost=False)
        key = store.put("f", "v")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        store.repair()
        value, _ = store.get(0, "f")
        assert value is None
        assert store.stats.lost_after_repair == 1
        # Re-publishing resurrects the key.
        store.put("f", "v2")
        value, _ = store.get(0, "f")
        assert value == "v2"


class TestRevive:
    def test_revive_restores_index_and_id(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(20, np.random.default_rng(6))
        net = ChordNetwork(space, ids)
        old_id = net.id_of(7)
        net.remove_peer(7)
        net.revive_peer(7)
        assert net.is_alive(7)
        assert net.id_of(7) == old_id
        assert net.n_peers == 20

    def test_revive_requires_dead_peer(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(10, np.random.default_rng(7))
        net = ChordNetwork(space, ids)
        with pytest.raises(ValueError):
            net.revive_peer(3)

    def test_hieras_revive_restores_ring(self):
        from repro.core.binning import BinningScheme
        from repro.core.hieras import HierasNetwork

        rng = np.random.default_rng(8)
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, rng)
        orders = BinningScheme.default_for_depth(2).orders(
            rng.uniform(0, 300, size=(40, 4))
        )
        net = HierasNetwork(space, ids, landmark_orders=orders, depth=2)
        name = net.ring_name_of(11, 2)
        net.remove_peer(11)
        net.revive_peer(11)
        assert net.ring_name_of(11, 2) == name
        assert 11 in set(int(p) for p in net.rings_at_layer(2)[name].peers)


class TestReplicaFallbackAccounting:
    """The fallback probes in :meth:`DHTStore.get` must be charged."""

    def make_lossy_store(self, small_networks):
        net, _ = small_networks  # chord: has a real latency model
        store = DHTStore(net, replicas=2)
        key = store.put("file", "data")
        owner = net.owner_of(key)
        return net, store, key, owner

    def test_fallback_probes_charge_hops_and_latency(self, small_networks):
        net, store, key, owner = self.make_lossy_store(small_networks)
        succs = net.successor_list(owner, 2)
        store._stored[owner].pop(key)  # the owner lost its copy
        before_hops = store.stats.get_hops
        before_ms = store.stats.get_latency_ms
        value, route = store.get(0, "file")
        assert value == "data"
        # One probe reached the first successor: one extra hop plus the
        # owner->successor link delay, on top of the routed cost.
        assert store.stats.get_hops == before_hops + route.hops + 1
        extra_ms = store.stats.get_latency_ms - before_ms - route.latency_ms
        assert extra_ms == pytest.approx(float(net.latency.pair(owner, succs[0])))

    def test_every_probe_charged_when_all_replicas_lost(self, small_networks):
        net, store, key, owner = self.make_lossy_store(small_networks)
        succs = net.successor_list(owner, 2)
        for peer in [owner] + succs:
            store._stored.get(peer, {}).pop(key, None)
        before_hops = store.stats.get_hops
        value, route = store.get(0, "file")
        assert value is None
        # Both successors were probed (and answered empty): both charged.
        assert store.stats.get_hops == before_hops + route.hops + len(succs)

    def test_miss_without_fallback_charges_route_only(self, small_networks):
        net, _ = small_networks
        store = DHTStore(net, replicas=0)
        store.put("file", "data")
        key = store._space().hash_key("file")
        owner = store.network.owner_of(key)
        store._stored[owner].pop(key)
        before = store.stats.get_hops
        value, route = store.get(0, "file")
        assert value is None
        assert store.stats.get_hops == before + route.hops  # no replicas to probe


class TestTinyRingPlacement:
    def test_replica_peers_dedupes_on_tiny_ring(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(3, np.random.default_rng(10))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=5)  # wraps the whole ring
        key = store.put("file", "data")
        peers = store._replica_peers(key)
        assert len(peers) == len(set(peers)) == 3
        assert store.stats.replicas_written == 3  # one write per distinct peer
        assert store.holder_count("file") == 3


class TestRealisticDurabilityEdges:
    def make_bare_store(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(30, np.random.default_rng(5))
        net = ChordNetwork(space, ids)
        return net, DHTStore(net, replicas=0, restore_lost=False)

    def crash_owner_of(self, net, store, name):
        owner = net.owner_of(store._space().hash_key(name))
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        store.repair()
        return owner

    def test_lost_republished_lost_again(self):
        """A resurrected key is a *new* fact: it can be lost afresh."""
        net, store = self.make_bare_store()
        store.put("f", "v1")
        self.crash_owner_of(net, store, "f")
        assert store.get(0, "f")[0] is None
        assert store.stats.lost_after_repair == 1
        store.put("f", "v2")  # re-publish clears the tombstone
        assert store.get(0, "f")[0] == "v2"
        self.crash_owner_of(net, store, "f")
        assert store.get(0, "f")[0] is None
        assert store.stats.lost_after_repair == 2  # counted again, not skipped
        # The tombstone keeps later repairs from resurrecting it.
        store.repair()
        assert store.get(0, "f")[0] is None

    def test_repair_layout_deterministic_across_runs(self):
        """Same membership + catalogue => byte-identical post-repair layout."""

        def run(seed):
            space = IdSpace(16)
            ids = space.sample_unique_ids(40, np.random.default_rng(2))
            net = ChordNetwork(space, ids)
            store = DHTStore(net, replicas=2, restore_lost=False)
            for i in range(20):
                store.put(f"k{i}", i)
            for peer in (3, 11, 19):
                store.drop_peer_state(peer)
                net.remove_peer(peer)
            store.repair()
            return {p: sorted(held.items()) for p, held in sorted(store._stored.items())}

        assert run(0) == run(1)  # the seed argument is deliberately unused


class TestHierasSuccessorsPath:
    def test_successors_of_uses_global_ring(self, small_networks):
        """HIERAS has no ``successor_list``; the store must fall back to
        the global ring — and agree with flat Chord over the same ids."""
        chord, hieras = small_networks
        assert not hasattr(hieras, "successor_list")
        store = DHTStore(hieras, replicas=3)
        chord_store = DHTStore(chord, replicas=3)
        for peer in (0, 17, 150):
            assert store._successors_of(peer) == chord_store._successors_of(peer)

    def test_hieras_fallback_read_via_global_successors(self, small_networks):
        _, hieras = small_networks
        store = DHTStore(hieras, replicas=2)
        key = store.put("file", "data")
        owner = hieras.owner_of(key)
        store._stored[owner].pop(key)
        before = store.stats.get_hops
        value, route = store.get(0, "file")
        assert value == "data"
        assert store.stats.get_hops > before + route.hops  # probes were charged
