"""Tests for the replicated KV store over ring DHTs."""

import numpy as np
import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.storage import DHTStore
from repro.util.ids import IdSpace


@pytest.fixture()
def chord_store():
    space = IdSpace(16)
    ids = space.sample_unique_ids(60, np.random.default_rng(0))
    net = ChordNetwork(space, ids)
    return net, DHTStore(net, replicas=2)


class TestPutGet:
    def test_roundtrip(self, chord_store):
        net, store = chord_store
        store.put("song.mp3", {"holders": [3, 9]})
        value, route = store.get(0, "song.mp3")
        assert value == {"holders": [3, 9]}
        assert route.owner == net.owner_of(net.space.hash_key("song.mp3"))

    def test_missing_key(self, chord_store):
        _, store = chord_store
        value, _ = store.get(0, "never-stored")
        assert value is None

    def test_replication_count(self, chord_store):
        _, store = chord_store
        store.put("a", 1)
        assert store.holder_count("a") == 3  # owner + 2 replicas

    def test_value_at_owner_and_successors(self, chord_store):
        net, store = chord_store
        key = store.put("b", 2)
        owner = net.owner_of(key)
        assert key in store.stored_keys(owner)
        for succ in net.successor_list(owner, 2):
            assert key in store.stored_keys(succ)

    def test_stats(self, chord_store):
        _, store = chord_store
        store.put("x", 1)
        store.get(5, "x")
        store.get(6, "x")
        assert store.stats.puts == 1
        assert store.stats.gets == 2
        assert store.stats.replicas_written == 3
        assert len(store) == 1

    def test_zero_replicas(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(20, np.random.default_rng(1))
        store = DHTStore(ChordNetwork(space, ids), replicas=0)
        store.put("solo", 1)
        assert store.holder_count("solo") == 1

    def test_negative_replicas_rejected(self, chord_store):
        net, _ = chord_store
        with pytest.raises(ValueError):
            DHTStore(net, replicas=-1)


class TestChurnRepair:
    def test_owner_crash_value_survives_via_replica(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        value, _ = store.get(0, "file")
        assert value == "data"

    def test_repair_promotes_replica_without_movement(self, chord_store):
        """With replicas, a crashed owner's successor already holds the
        key — repair re-establishes the replica count with zero owner
        rewrites (Chord/CFS's replica-promotion property)."""
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        moved = store.repair()
        assert moved == 0
        new_owner = net.owner_of(key)
        assert key in store.stored_keys(new_owner)
        assert store.holder_count("file") == 3

    def test_repair_moves_keys_without_replicas(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, np.random.default_rng(2))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0)
        key = store.put("file", "data")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        moved = store.repair()
        assert moved == 1
        assert store.stats.lost_after_repair == 1  # no replica survived
        assert key in store.stored_keys(net.owner_of(key))

    def test_join_triggers_ownership_transfer(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        if key in net.ring:  # astronomically unlikely at 16 bits / 60 peers
            pytest.skip("key collided with an existing node id")
        # A peer joining exactly at the key becomes its new owner.
        new_peer = net.add_peer(int(key))
        store.repair()
        assert key in store.stored_keys(new_peer)
        value, route = store.get(0, "file")
        assert value == "data" and route.owner == new_peer

    def test_total_loss_detected(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        holders = [owner] + net.successor_list(owner, 2)
        for peer in holders:
            store.drop_peer_state(peer)
        store.repair()
        assert store.stats.lost_after_repair == 1
        # The audit catalogue restored it.
        assert store.holder_count("file") == 3

    def test_repair_prunes_stale_copies(self, chord_store):
        net, store = chord_store
        key = store.put("file", "data")
        owner = net.owner_of(key)
        stale = (owner + 1) % net.n_peers
        store._stored.setdefault(stale, {})[key] = "data"  # simulate stale copy
        store.repair()
        replica_set = [net.owner_of(key)] + net.successor_list(net.owner_of(key), 2)
        for peer in range(net.n_peers):
            if peer not in replica_set:
                assert key not in store.stored_keys(peer)


class TestOverHieras:
    def test_store_over_hieras_network(self, small_networks):
        _, hieras = small_networks
        store = DHTStore(hieras, replicas=2)
        store.put("movie.avi", "meta")
        value, route = store.get(3, "movie.avi")
        assert value == "meta"
        assert route.owner == hieras.owner_of(hieras.space.hash_key("movie.avi"))
        assert store.holder_count("movie.avi") == 3


class TestDurabilityModes:
    def test_restore_lost_default_resurrects(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(30, np.random.default_rng(5))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0, restore_lost=True)
        key = store.put("f", "v")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        store.repair()
        value, _ = store.get(0, "f")
        assert value == "v"

    def test_realistic_mode_loses_data(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(30, np.random.default_rng(5))
        net = ChordNetwork(space, ids)
        store = DHTStore(net, replicas=0, restore_lost=False)
        key = store.put("f", "v")
        owner = net.owner_of(key)
        store.drop_peer_state(owner)
        net.remove_peer(owner)
        store.repair()
        value, _ = store.get(0, "f")
        assert value is None
        assert store.stats.lost_after_repair == 1
        # Re-publishing resurrects the key.
        store.put("f", "v2")
        value, _ = store.get(0, "f")
        assert value == "v2"


class TestRevive:
    def test_revive_restores_index_and_id(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(20, np.random.default_rng(6))
        net = ChordNetwork(space, ids)
        old_id = net.id_of(7)
        net.remove_peer(7)
        net.revive_peer(7)
        assert net.is_alive(7)
        assert net.id_of(7) == old_id
        assert net.n_peers == 20

    def test_revive_requires_dead_peer(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(10, np.random.default_rng(7))
        net = ChordNetwork(space, ids)
        with pytest.raises(ValueError):
            net.revive_peer(3)

    def test_hieras_revive_restores_ring(self):
        from repro.core.binning import BinningScheme
        from repro.core.hieras import HierasNetwork

        rng = np.random.default_rng(8)
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, rng)
        orders = BinningScheme.default_for_depth(2).orders(
            rng.uniform(0, 300, size=(40, 4))
        )
        net = HierasNetwork(space, ids, landmark_orders=orders, depth=2)
        name = net.ring_name_of(11, 2)
        net.remove_peer(11)
        net.revive_peer(11)
        assert net.ring_name_of(11, 2) == name
        assert 11 in set(int(p) for p in net.rings_at_layer(2)[name].peers)
