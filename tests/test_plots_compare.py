"""Tests for terminal plots and statistical comparison helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import bootstrap_ci, bootstrap_ratio_ci, compare_means
from repro.analysis.plots import bar_chart, line_plot, sparkline


class TestBarChart:
    def test_basic_shape(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10  # max bar fills width
        assert lines[0].count("█") == 5

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_value_no_bar(self):
        out = bar_chart(["a", "b"], [0.0, 1.0], width=8)
        assert "█" not in out.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestLinePlot:
    def test_contains_markers_and_axes(self):
        out = line_plot([0, 1, 2], {"s": [0.0, 0.5, 1.0]}, width=20, height=5)
        assert "o" in out
        assert "o=s" in out
        assert "+" + "-" * 20 in out

    def test_multi_series_markers(self):
        out = line_plot(
            [0, 1], {"a": [0, 1], "b": [1, 0]}, width=10, height=4
        )
        assert "o=a" in out and "x=b" in out
        assert "x" in out

    def test_constant_series_ok(self):
        out = line_plot([0, 1, 2], {"flat": [3.0, 3.0, 3.0]})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([0], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_plot([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_plot([0, 1], {})


class TestSparkline:
    def test_monotone(self):
        out = sparkline([1, 2, 3, 4])
        assert out[0] == "▁" and out[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_length_property(self, values):
        assert len(sparkline(values)) == len(values)


class TestBootstrapCi:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, 500)
        ci = bootstrap_ci(data, seed=1)
        assert ci.low < 10.0 < ci.high
        assert ci.estimate == pytest.approx(data.mean())
        assert 10.0 in ci

    def test_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 50), seed=2)
        large = bootstrap_ci(rng.normal(0, 1, 5000), seed=2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic(self):
        data = np.arange(100, dtype=float)
        a = bootstrap_ci(data, seed=3)
        b = bootstrap_ci(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.asarray([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.asarray([1.0, 2.0]), confidence=0.4)


class TestRatioCi:
    def test_paired_ratio(self):
        rng = np.random.default_rng(2)
        denom = rng.uniform(100, 200, 1000)
        numer = 0.5 * denom + rng.normal(0, 5, 1000)
        ci = bootstrap_ratio_ci(numer, denom, seed=4)
        assert 0.48 < ci.estimate < 0.52
        assert ci.low < ci.estimate < ci.high
        assert ci.high - ci.low < 0.02  # paired: tight around the estimate

    def test_pairing_tightens_interval(self):
        """Paired resampling must beat treating the ratio's noise as
        independent — the correlated part cancels."""
        rng = np.random.default_rng(3)
        denom = rng.uniform(100, 1000, 400)  # huge shared variance
        numer = 0.5 * denom
        ci = bootstrap_ratio_ci(numer, denom, seed=5)
        assert ci.high - ci.low < 0.01  # perfectly paired: ~zero width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(np.asarray([1.0, 2.0]), np.asarray([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(np.asarray([1.0, 2.0]), np.asarray([1.0, -1.0]))


class TestCompareMeans:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(4)
        a = rng.normal(10, 1, 300)
        b = rng.normal(8, 1, 300)
        out = compare_means(a, b, seed=6)
        assert out["significant"] is True
        assert out["mean_diff"] == pytest.approx(2.0, abs=0.3)
        assert out["cohens_d"] > 0.5

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(5)
        a = rng.normal(10, 1, 300)
        b = a + rng.normal(0, 1, 300)
        out = compare_means(a, b, seed=7)
        assert out["significant"] is False
