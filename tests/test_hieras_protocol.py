"""Tests for the HIERAS node-operations protocol (§3.3)."""

import numpy as np
import pytest

from repro.core.hieras_protocol import HierasProtocolNode
from repro.core.ring import ring_id
from repro.dht.base import ZeroLatency
from repro.dht.chord_protocol import GLOBAL_RING
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.util.ids import IdSpace


def build_system(n=24, rings=2, seed=3, bits=16, join_gap_ms=300.0, settle_ms=60000.0):
    space = IdSpace(bits)
    rng = np.random.default_rng(seed)
    ids = space.sample_unique_ids(n, rng)
    names = [[str(p % rings)] for p in range(n)]
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency())
    nodes = [HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)]
    nodes[0].found_system(names[0], landmark_table=[11, 22, 33])
    t = 0.0
    for p in range(1, n):
        t += join_gap_ms
        sim.schedule_at(t, nodes[p].join_system, 0, names[p])
    sim.run(until=t + settle_ms, max_events=10_000_000)
    return space, ids, names, sim, net, nodes


def check_ring_cycle(nodes, ids, members, ring_name):
    order = sorted(members, key=lambda p: int(ids[p]))
    for i, p in enumerate(order):
        expect = order[(i + 1) % len(order)]
        state = nodes[p].rings[ring_name]
        assert state.successor is not None and state.successor[0] == expect


@pytest.fixture(scope="module")
def system():
    return build_system()


class TestJoinProtocol:
    def test_everyone_joined(self, system):
        *_, nodes = system
        assert all(n.joined for n in nodes)

    def test_global_ring_converged(self, system):
        space, ids, names, sim, net, nodes = system
        check_ring_cycle(nodes, ids, list(range(len(ids))), GLOBAL_RING)

    def test_lower_rings_converged(self, system):
        space, ids, names, sim, net, nodes = system
        for ring in ("0", "1"):
            members = [p for p in range(len(ids)) if names[p][0] == ring]
            check_ring_cycle(nodes, ids, members, ring)

    def test_nodes_only_in_their_rings(self, system):
        space, ids, names, sim, net, nodes = system
        for p, node in enumerate(nodes):
            assert set(node.rings) == {GLOBAL_RING, names[p][0]}

    def test_landmark_table_copied(self, system):
        *_, nodes = system
        assert all(n.landmark_table == [11, 22, 33] for n in nodes[1:])

    def test_ring_tables_on_current_owner(self, system):
        """Each ring table lives on the global successor of its ring id
        (the protocol's placement rule) after handoffs settle."""
        space, ids, names, sim, net, nodes = system
        sorted_ids = np.sort(ids)

        def owner_peer(rid):
            i = np.searchsorted(sorted_ids, rid)
            owner_id = int(sorted_ids[i % len(ids)])
            return int(np.flatnonzero(ids == owner_id)[0])

        for ring in ("0", "1"):
            rid = ring_id(space, ring)
            host = owner_peer(rid)
            assert ring in nodes[host].stored_ring_tables

    def test_ring_table_extremes_correct(self, system):
        space, ids, names, sim, net, nodes = system
        for ring in ("0", "1"):
            member_ids = sorted(int(ids[p]) for p in range(len(ids)) if names[p][0] == ring)
            tables = [
                n.stored_ring_tables[ring]
                for n in nodes
                if ring in n.stored_ring_tables
            ]
            # At least one stored copy matches the true extremes.
            expected = {member_ids[-1], member_ids[-2], member_ids[0], member_ids[1]}
            assert any({e[0] for e in t} == expected for t in tables)


class TestHierarchicalLookup:
    def test_owner_correct(self, system):
        space, ids, names, sim, net, nodes = system
        rng = np.random.default_rng(1)
        sorted_ids = np.sort(ids)
        results = []
        for _ in range(150):
            nodes[int(rng.integers(0, len(ids)))].hieras_lookup(
                int(rng.integers(0, space.size)), results.append
            )
        sim.run(until=sim.now + 60000, max_events=10_000_000)
        assert len(results) == 150
        for out in results:
            i = np.searchsorted(sorted_ids, out.key)
            assert out.owner_id == int(sorted_ids[i % len(ids)])

    def test_per_layer_split_sums(self, system):
        space, ids, names, sim, net, nodes = system
        rng = np.random.default_rng(2)
        results = []
        for _ in range(80):
            nodes[int(rng.integers(0, len(ids)))].hieras_lookup(
                int(rng.integers(0, space.size)), results.append
            )
        sim.run(until=sim.now + 60000, max_events=10_000_000)
        for out in results:
            assert sum(out.hops_per_layer) == out.hops
            assert len(out.hops_per_layer) == 2

    def test_lookup_uses_lower_layer(self, system):
        space, ids, names, sim, net, nodes = system
        rng = np.random.default_rng(3)
        results = []
        for _ in range(150):
            nodes[int(rng.integers(0, len(ids)))].hieras_lookup(
                int(rng.integers(0, space.size)), results.append
            )
        sim.run(until=sim.now + 60000, max_events=10_000_000)
        low = sum(sum(o.hops_per_layer[:-1]) for o in results)
        total = sum(o.hops for o in results)
        assert low > 0.3 * total

    def test_early_exit_when_origin_owns(self, system):
        space, ids, names, sim, net, nodes = system
        # A node and a key it owns.
        node = nodes[5]
        key = node.node_id  # it owns its own id
        results = []
        node.hieras_lookup(int(key), results.append)
        sim.run(until=sim.now + 20000, max_events=2_000_000)
        assert results and results[0].owner_peer == 5
        assert results[0].hops == 0


class TestCrossStackEquivalence:
    def test_protocol_matches_static_owner(self):
        """Converged protocol lookups agree with the static stack built
        from the same membership and ring names."""
        from repro.core.binning import BinningScheme, LandmarkOrders
        from repro.core.hieras import HierasNetwork

        space, ids, names, sim, net, nodes = build_system(n=20, rings=3, seed=9)
        static = HierasNetwork(
            space,
            ids,
            landmark_orders=LandmarkOrders(
                scheme=BinningScheme.default_for_depth(2),
                distances=np.zeros((20, 1)),
                level_matrices=[np.zeros((20, 1), dtype=np.int64)],
                names_per_layer=[np.asarray([nm[0] for nm in names], dtype=object)],
            ),
            depth=2,
        )
        rng = np.random.default_rng(4)
        results = []
        keys = []
        for _ in range(100):
            k = int(rng.integers(0, space.size))
            keys.append(k)
            nodes[int(rng.integers(0, 20))].hieras_lookup(k, results.append)
        sim.run(until=sim.now + 60000, max_events=10_000_000)
        assert len(results) == 100
        for out in results:
            assert out.owner_peer == static.owner_of(out.key)


class TestRingTableHostFailure:
    def test_table_survives_host_crash(self):
        """The ring-table host crashes; members' periodic republish
        re-creates the table at the new owner of the ring id."""
        space, ids, names, sim, net, nodes = build_system(n=20, rings=2, seed=31)
        ring = "0"
        hosts = [p for p in range(20) if ring in nodes[p].stored_ring_tables]
        assert hosts, "someone must host the table after convergence"
        host = hosts[0]
        members = [p for p in range(20) if names[p][0] == ring and p != host]
        nodes[host].fail()
        net.unregister(host)
        sim.run(until=sim.now + 60_000, max_events=20_000_000)
        live_hosts = [
            p
            for p in range(20)
            if p != host and nodes[p].alive and ring in nodes[p].stored_ring_tables
        ]
        assert live_hosts, "republish must re-home the ring table"
        # And joins keep working through the re-homed table: a failed
        # member rejoins and re-enters its ring.
        rejoiner = members[0]
        nodes[rejoiner].fail()
        net.unregister(rejoiner)
        sim.run(until=sim.now + 30_000, max_events=20_000_000)
        net.register(nodes[rejoiner])
        nodes[rejoiner].recover()
        nodes[rejoiner].join_system(members[1], names[rejoiner])
        sim.run(until=sim.now + 60_000, max_events=20_000_000)
        assert nodes[rejoiner].joined
        assert ring in nodes[rejoiner].rings
