"""Tests for the open-loop load generator (``repro.loadgen``)."""

import json

import numpy as np
import pytest

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle
from repro.loadgen import (
    SLOReport,
    WorkloadMix,
    catalog_names,
    constant_rate,
    diurnal,
    flash_crowd,
    generate,
    ramp,
)
from repro.metrics.registry import Histogram
from repro.serve import DHTService, ServiceConfig


class TestSchedules:
    def test_constant_rate_mass(self):
        sched = constant_rate(100.0, 10_000.0)
        assert sched.expected_arrivals == pytest.approx(1000.0)

    def test_flash_crowd_mass_is_exact(self):
        sched = flash_crowd(
            100.0, 10_000.0, spike_at_ms=2000.0, spike_duration_ms=1000.0,
            spike_factor=8.0,
        )
        # 9 s at base + 1 s at 8x base.
        assert sched.expected_arrivals == pytest.approx(900.0 + 800.0)

    def test_ramp_mass_is_exact(self):
        sched = ramp(0.0, 200.0, 10_000.0)
        assert sched.expected_arrivals == pytest.approx(1000.0)

    def test_diurnal_full_period_averages_out(self):
        sched = diurnal(100.0, 60_000.0, amplitude=0.8, period_ms=60_000.0)
        # The sinusoid integrates to zero over a full period.
        assert sched.expected_arrivals == pytest.approx(6000.0, rel=1e-6)

    def test_arrivals_sorted_and_in_window(self):
        for sched in (
            constant_rate(200.0, 5000.0),
            diurnal(200.0, 5000.0, amplitude=0.5, period_ms=5000.0),
            flash_crowd(100.0, 5000.0, spike_at_ms=1000.0, spike_duration_ms=500.0),
            ramp(50.0, 400.0, 5000.0),
        ):
            times = sched.arrival_times(7)
            assert np.all(np.diff(times) >= 0.0)
            assert times.size == 0 or (times[0] >= 0.0 and times[-1] <= 5000.0)

    def test_fluid_jitter_matches_mass_exactly(self):
        sched = constant_rate(100.0, 10_000.0)
        times = sched.arrival_times(jitter="none")
        assert times.size == 1000
        # Fluid arrivals at a constant rate are evenly spaced.
        gaps = np.diff(times)
        assert np.allclose(gaps, gaps[0])

    def test_poisson_count_near_mass(self):
        sched = constant_rate(500.0, 10_000.0)
        n = sched.arrival_times(11).size
        assert abs(n - 5000) < 5 * np.sqrt(5000)

    def test_flash_concentrates_arrivals(self):
        sched = flash_crowd(
            100.0, 10_000.0, spike_at_ms=4000.0, spike_duration_ms=1000.0,
            spike_factor=8.0,
        )
        times = sched.arrival_times(3)
        in_spike = np.sum((times >= 4000.0) & (times < 5000.0))
        # The 10% spike window carries ~47% of the offered mass.
        assert in_spike / times.size > 0.35

    def test_zero_rate_produces_nothing(self):
        assert constant_rate(0.0, 1000.0).arrival_times(5).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_rate(-1.0, 1000.0)
        with pytest.raises(ValueError):
            constant_rate(1.0, 0.0)
        with pytest.raises(ValueError):
            diurnal(1.0, 1000.0, amplitude=2.0)
        with pytest.raises(ValueError):
            flash_crowd(1.0, 1000.0, spike_at_ms=0.0, spike_duration_ms=0.0)
        with pytest.raises(ValueError):
            constant_rate(1.0, 1000.0).arrival_times(0, jitter="gamma")


class TestWorkload:
    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix(read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadMix(catalog_size=0)

    def test_catalog_names_rank_ordered(self):
        names = catalog_names(WorkloadMix(catalog_size=3, name_prefix="f"))
        assert names == ["f-1", "f-2", "f-3"]

    def test_read_fraction_respected(self):
        mix = WorkloadMix(read_fraction=0.75, catalog_size=32)
        arrivals = constant_rate(400.0, 10_000.0).arrival_times(5)
        reqs = generate(mix, arrivals, np.arange(50), seed=9)
        reads = sum(r.op == "get" for r in reqs)
        assert abs(reads / len(reqs) - 0.75) < 0.05

    def test_zipf_skews_key_popularity(self):
        mix = WorkloadMix(catalog_size=64, zipf_exponent=0.95)
        arrivals = constant_rate(400.0, 10_000.0).arrival_times(5)
        reqs = generate(mix, arrivals, np.arange(50), seed=9)
        hottest = sum(r.name == "key-1" for r in reqs)
        coldest = sum(r.name == "key-64" for r in reqs)
        assert hottest > 5 * max(coldest, 1)

    def test_requests_sorted_and_valid(self):
        mix = WorkloadMix()
        arrivals = constant_rate(100.0, 2000.0).arrival_times(1)
        reqs = generate(mix, arrivals, np.arange(10), seed=2)
        assert all(a.at_ms <= b.at_ms for a, b in zip(reqs, reqs[1:]))
        assert all(0 <= r.source < 10 for r in reqs)
        put_values = [r.value for r in reqs if r.op == "put"]
        assert len(set(put_values)) == len(put_values)

    def test_empty_arrivals(self):
        assert generate(WorkloadMix(), np.empty(0), np.arange(4), seed=0) == []

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            generate(WorkloadMix(), np.asarray([1.0]), np.empty(0, dtype=np.int64))


class TestByteDeterminism:
    def test_same_seed_same_arrival_bytes(self):
        sched = flash_crowd(
            300.0, 8000.0, spike_at_ms=2000.0, spike_duration_ms=1000.0
        )
        a = sched.arrival_times(123)
        b = sched.arrival_times(123)
        assert a.tobytes() == b.tobytes()
        assert a.tobytes() != sched.arrival_times(124).tobytes()

    def test_same_seed_same_requests(self):
        mix = WorkloadMix(catalog_size=16)
        arrivals = constant_rate(200.0, 3000.0).arrival_times(7)
        pool = np.arange(20)
        assert generate(mix, arrivals, pool, seed=5) == generate(mix, arrivals, pool, seed=5)

    def test_same_seed_same_slo_summary_bytes(self):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=80, n_landmarks=4, depth=2, seed=42)
        )
        mix = WorkloadMix(catalog_size=16)
        sched = constant_rate(300.0, 3000.0)
        pool = np.arange(80)

        def run() -> str:
            reqs = generate(mix, sched.arrival_times(42), pool, seed=43)
            result = DHTService(bundle.hieras, config=ServiceConfig()).run(reqs)
            report = SLOReport.from_result(
                result, offered_per_s=300.0, duration_ms=3000.0
            )
            return json.dumps(report.as_dict(), sort_keys=True)

        assert run() == run()


class TestSLOReport:
    @pytest.fixture(scope="class")
    def report(self):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=80, n_landmarks=4, depth=2, seed=42)
        )
        mix = WorkloadMix(catalog_size=16)
        reqs = generate(
            mix, constant_rate(300.0, 3000.0).arrival_times(42), np.arange(80), seed=43
        )
        result = DHTService(bundle.hieras).run(reqs)
        return SLOReport.from_result(result, offered_per_s=300.0, duration_ms=3000.0)

    def test_counts_are_consistent(self, report):
        assert report.arrivals == report.served + report.rejected + report.shed + report.failed
        assert report.goodput_fraction == pytest.approx(report.served / report.arrivals)

    def test_phases_present_with_quantiles(self, report):
        for label in ("total", "queue_wait", "service", "route", "fanout", "get_total"):
            row = report.phases[label]
            assert set(row) == {"count", "mean", "p50", "p99", "p999", "max"}
            assert row["p50"] <= row["p99"] <= row["p999"] <= row["max"] or row["count"] == 0

    def test_total_dominates_components(self, report):
        assert report.phases["total"]["p99"] >= report.phases["route"]["p99"]

    def test_as_dict_round_trips_json(self, report):
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["arrivals"] == report.arrivals


class TestHistogramQuantileAccuracy:
    """p50/p99/p999 from log buckets vs exact np.quantile.

    The serving layer's SLO numbers ride on ``Histogram.quantile``; for
    base 1.1 the bucket midpoint is within half a bucket (~5%) of any
    value in the bucket, so estimates must land within one log-bucket
    of the exact empirical quantile — including on adversarial
    (bimodal, heavy-tailed, near-constant) latency shapes.
    """

    @pytest.mark.parametrize(
        "name,values",
        [
            ("uniform", np.linspace(0.1, 1000.0, 5001)),
            ("lognormal", np.exp(np.linspace(-2, 8, 4001))),
            ("bimodal", np.concatenate([np.full(900, 2.0), np.full(100, 5000.0)])),
            ("near_constant", np.full(1000, 123.4)),
            ("heavy_tail", 1.0 / np.linspace(1e-4, 1.0, 2000) ** 1.5),
            ("with_zeros", np.concatenate([np.zeros(50), np.linspace(1.0, 99.0, 950)])),
        ],
    )
    def test_within_one_log_bucket(self, name, values):
        hist = Histogram(name, base=1.1)
        hist.record_many(values)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            estimate = hist.quantile(q)
            if exact == 0.0:
                assert estimate == 0.0
                continue
            # One log-bucket tolerance: the estimate and the exact value
            # lie within a factor of the bucket width (base) of each other.
            assert estimate <= exact * hist.base * 1.0001, (name, q)
            assert estimate >= exact / hist.base * 0.9999, (name, q)

    def test_quantile_monotone_in_q(self):
        rng = np.random.default_rng(5)
        hist = Histogram("mono", base=1.1)
        hist.record_many(rng.exponential(50.0, size=3000))
        qs = [hist.quantile(q) for q in np.linspace(0.0, 1.0, 21)]
        assert qs == sorted(qs)
