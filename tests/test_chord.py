"""Tests for the array-backed Chord network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordNetwork
from repro.util.ids import IdSpace
from repro.util.intervals import clockwise_distance


def make_net(ids, bits=16, **kw):
    return ChordNetwork(IdSpace(bits=bits), np.asarray(ids, dtype=np.uint64), **kw)


@pytest.fixture(scope="module")
def net200():
    space = IdSpace(16)
    ids = space.sample_unique_ids(200, np.random.default_rng(0))
    return ChordNetwork(space, ids)


class TestConstruction:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            make_net([5, 5, 9])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_net([])

    def test_peer_id_mapping(self):
        net = make_net([30, 10, 20])
        assert net.id_of(0) == 30
        assert net.id_of(1) == 10
        assert net.ids.tolist() == [10, 20, 30]

    def test_successor_predecessor(self):
        net = make_net([10, 20, 30])
        # peers: 0->10? ids given unsorted? here sorted mapping: peer0=10.
        assert net.successor(0) == 1
        assert net.predecessor(0) == 2
        assert net.successor(2) == 0

    def test_successor_list(self):
        net = make_net([10, 20, 30, 40])
        assert net.successor_list(0, 2) == [1, 2]


class TestOwnership:
    def test_owner_is_key_successor(self, net200, rng):
        ids_sorted = net200.ids
        for key in rng.integers(0, net200.space.size, 200):
            owner = net200.owner_of(int(key))
            owner_id = net200.id_of(owner)
            idx = np.searchsorted(ids_sorted, key)
            expected = int(ids_sorted[idx % len(ids_sorted)])
            assert owner_id == expected

    def test_exact_id_owns_itself(self, net200):
        some_id = int(net200.ids[17])
        owner = net200.owner_of(some_id)
        assert net200.id_of(owner) == some_id


class TestRouting:
    def test_route_reaches_owner(self, net200, rng):
        for _ in range(300):
            s = int(rng.integers(0, net200.n_peers))
            k = int(rng.integers(0, net200.space.size))
            r = net200.route(s, k)
            assert r.path[0] == s
            assert r.path[-1] == r.owner == net200.owner_of(k)
            assert r.hops == len(r.path) - 1
            assert r.hops_per_layer == [r.hops]

    def test_hops_logarithmic(self, net200, rng):
        hops = [
            net200.route(
                int(rng.integers(0, 200)), int(rng.integers(0, net200.space.size))
            ).hops
            for _ in range(800)
        ]
        mean = np.mean(hops)
        half_log = 0.5 * np.log2(200)
        assert half_log - 1.0 < mean < half_log + 2.0
        assert max(hops) <= 16 + 1  # bits + final hop

    def test_zero_latency_by_default(self, net200):
        r = net200.route(0, 12345)
        assert r.latency_ms == 0.0

    def test_latency_accumulates_along_path(self, small_networks, rng):
        chord, _ = small_networks
        r = chord.route(3, int(rng.integers(0, chord.space.size)))
        arr = np.asarray(r.path)
        if len(arr) > 1:
            expected = chord.latency.pairs(arr[:-1], arr[1:]).sum()
            assert r.latency_ms == pytest.approx(expected)

    def test_successor_list_shortcut_same_owner(self, rng):
        space = IdSpace(16)
        ids = space.sample_unique_ids(150, np.random.default_rng(1))
        plain = ChordNetwork(space, ids)
        fast = ChordNetwork(space, ids, successor_list_r=8)
        total_plain = total_fast = 0
        for _ in range(200):
            s = int(rng.integers(0, 150))
            k = int(rng.integers(0, space.size))
            a, b = plain.route(s, k), fast.route(s, k)
            assert a.owner == b.owner
            total_plain += a.hops
            total_fast += b.hops
        assert total_fast < total_plain

    def test_route_from_dead_peer_rejected(self):
        net = make_net([10, 20, 30])
        net.remove_peer(1)
        with pytest.raises(ValueError):
            net.route(1, 5)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=2, max_size=40, unique=True),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=39),
    )
    @settings(max_examples=80, deadline=None)
    def test_route_property(self, ids, key, start):
        net = make_net(ids)
        s = start % net.n_peers
        r = net.route(s, key)
        assert r.owner == net.owner_of(key)
        # Monotone progress toward the key until the final hop (which
        # legitimately lands on the successor just past the key).
        d = [clockwise_distance(net.id_of(p), key, net.space.size) for p in r.path[:-1]]
        assert all(a > b for a, b in zip(d, d[1:])) or len(d) <= 1


class TestMembership:
    def test_add_peer(self):
        net = make_net([10, 30])
        p = net.add_peer(20)
        assert p == 2
        assert net.n_peers == 3
        assert net.owner_of(15) == p

    def test_add_duplicate_rejected(self):
        net = make_net([10, 30])
        with pytest.raises(ValueError):
            net.add_peer(10)

    def test_remove_peer_reassigns_keys(self):
        net = make_net([10, 20, 30])
        owner_before = net.owner_of(15)  # id 20
        net.remove_peer(owner_before)
        assert net.id_of(net.owner_of(15)) == 30
        assert not net.is_alive(owner_before)

    def test_remove_last_peer_rejected(self):
        net = make_net([10])
        with pytest.raises(ValueError):
            net.remove_peer(0)

    def test_indices_stable_after_removal(self):
        net = make_net([10, 20, 30, 40])
        net.remove_peer(1)
        assert net.id_of(3) == 40  # untouched peers keep ids/indices
        r = net.route(0, 40)
        assert 1 not in r.path

    def test_rejoin_via_add(self):
        net = make_net([10, 20])
        net.remove_peer(0)
        p = net.add_peer(10)
        assert net.id_of(p) == 10
        assert net.n_peers == 2


class TestFingerTable:
    def test_matches_ring_fingers(self, net200):
        table = net200.finger_table(0)
        assert len(table) == net200.space.bits
        for e in table:
            assert e.node_id == net200.id_of(net200.owner_of(e.start))

    def test_distinct_fingers_logarithmic(self, net200):
        distinct = len({e.node_id for e in net200.finger_table(5)})
        assert distinct <= np.log2(200) + 4
