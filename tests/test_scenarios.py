"""Tests for the scenario suite (``repro.scenarios``)."""

import json

import pytest

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle
from repro.experiments.scenarios_exp import (
    SCHEMA,
    check_gates,
    run_bench_scenarios,
    write_bench_scenarios,
)
from repro.replication import ReplicatedStore, ReplicationPolicy
from repro.scenarios import (
    SCENARIOS,
    ScenarioParams,
    recovery_time_ms,
    run_scenario_cell,
    scenario_names,
    series_summary,
)
from repro.scenarios.library import (
    compile_abrupt_crash,
    compile_graceful_leave,
    compile_regional_failure,
)

N_PEERS = 120

CONFIG = SimConfig(model="ts", n_peers=N_PEERS, n_landmarks=4, depth=2, seed=7)
PARAMS = ScenarioParams(
    seed=11,
    duration_ms=1500.0,
    probe_interval_ms=150.0,
    n_probes=8,
    rate_per_s=20.0,
    fault_at_ms=600.0,
    stabilize_delay_ms=300.0,
    catalog_size=16,
)


@pytest.fixture(scope="module")
def bundle():
    return build_bundle(CONFIG)


class TestTimeline:
    def test_recovery_clean_dip(self):
        times = [100.0, 200.0, 300.0, 400.0, 500.0]
        rates = [1.0, 0.5, 0.8, 0.95, 1.0]
        assert recovery_time_ms(times, rates, fault_start_ms=150.0, threshold=0.9) == (
            250.0,
            True,
        )

    def test_recovery_is_sustained_not_first_crossing(self):
        # One good cohort mid-flap must not count as recovery.
        times = [100.0, 200.0, 300.0, 400.0]
        rates = [0.5, 0.95, 0.5, 0.95]
        assert recovery_time_ms(times, rates, fault_start_ms=100.0, threshold=0.9) == (
            300.0,
            True,
        )

    def test_recovery_censored(self):
        assert recovery_time_ms(
            [100.0, 200.0], [0.5, 0.5], fault_start_ms=0.0, threshold=0.9
        ) == (-1.0, False)

    def test_no_dip_recovers_at_first_post_fault_tick(self):
        assert recovery_time_ms(
            [100.0, 200.0], [1.0, 1.0], fault_start_ms=150.0, threshold=0.9
        ) == (50.0, True)

    def test_series_summary(self):
        assert series_summary([]) == {"mean": 0.0, "min": 0.0, "final": 0.0}
        summary = series_summary([1.0, 0.5, 0.75])
        assert summary == {"mean": 0.75, "min": 0.5, "final": 0.75}


class TestCompile:
    def test_every_scenario_compiles_with_sorted_waves(self, bundle):
        for name in scenario_names():
            compiled = SCENARIOS[name](bundle, PARAMS)
            assert compiled.name == name
            times = [w.time_ms for w in compiled.waves]
            assert times == sorted(times)
            assert compiled.duration_ms == PARAMS.duration_ms

    def test_compilation_is_deterministic(self, bundle):
        for name in scenario_names():
            a = SCENARIOS[name](bundle, PARAMS)
            b = SCENARIOS[name](build_bundle(CONFIG), PARAMS)
            assert a.plan.events(N_PEERS) == b.plan.events(N_PEERS)
            assert a.waves == b.waves
            assert a.initial_offline == b.initial_offline
            assert a.notes == b.notes

    def test_departure_pair_shares_the_cohort(self, bundle):
        graceful = compile_graceful_leave(bundle, PARAMS)
        abrupt = compile_abrupt_crash(bundle, PARAMS)
        crash = [e for e in abrupt.plan.events(N_PEERS) if e.kind == "crash"][0]
        assert graceful.waves[0].peers == crash.peers
        assert graceful.notes["departed"] == abrupt.notes["departed"]

    def test_regional_failure_kills_a_whole_ring(self, bundle):
        compiled = compile_regional_failure(bundle, PARAMS)
        rings = bundle.hieras.rings_at_layer(bundle.hieras.depth)
        members = sorted(
            int(p) for p in rings[compiled.notes["ring_name"]].peers
        )
        crash = [e for e in compiled.plan.events(N_PEERS) if e.kind == "crash"][0]
        assert list(crash.peers) == members
        assert compiled.notes["ring_size"] == len(members)
        assert len(members) == max(len(r) for r in rings.values())

    def test_landmark_waves_carry_ring_names(self, bundle):
        compiled = SCENARIOS["landmark_outage_rolling"](bundle, PARAMS)
        rebinds = [w for w in compiled.waves if w.kind == "rebind_revive"]
        assert rebinds
        for wave in rebinds:
            assert len(wave.ring_names) == len(wave.peers)
            for names in wave.ring_names:
                assert len(names) == CONFIG.depth - 1


class TestRunner:
    def test_cell_is_deterministic(self):
        a = run_scenario_cell(CONFIG, "regional_failure", "hieras", PARAMS)
        b = run_scenario_cell(CONFIG, "regional_failure", "hieras", PARAMS)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_cell_metric_shape(self):
        cell = run_scenario_cell(CONFIG, "graceful_leave", "chord", PARAMS)
        n_ticks = int(PARAMS.duration_ms // PARAMS.probe_interval_ms)
        assert len(cell["availability"]) == n_ticks
        assert all(0.0 <= a <= 1.0 for a in cell["availability"])
        assert cell["availability_min"] <= cell["availability_mean"]
        assert cell["keys"] == PARAMS.catalog_size
        assert cell["graceful_handoffs"] > 0
        assert cell["live_final"] < N_PEERS

    def test_graceful_beats_abrupt(self):
        graceful = run_scenario_cell(CONFIG, "graceful_leave", "hieras", PARAMS)
        abrupt = run_scenario_cell(CONFIG, "abrupt_crash", "hieras", PARAMS)
        assert graceful["loss_probability"] <= abrupt["loss_probability"]
        assert graceful["stretch_mean"] < abrupt["stretch_mean"]

    def test_flash_join_rebalances(self):
        cell = run_scenario_cell(CONFIG, "flash_join", "chord", PARAMS)
        assert cell["rebalanced"] > 0
        assert cell["initial_live"] < N_PEERS
        assert cell["live_final"] == N_PEERS

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            run_scenario_cell(CONFIG, "nope", "chord", PARAMS)
        with pytest.raises(ValueError):
            run_scenario_cell(CONFIG, "graceful_leave", "pastry", PARAMS)


class TestGracefulLeave:
    """Satellite: announced departure hands data off before disks drop."""

    def test_graceful_leave_preserves_bare_data(self, bundle):
        leavers = list(range(0, N_PEERS, 3))

        def survivors_loss(graceful: bool) -> float:
            net = build_bundle(CONFIG).chord
            store = ReplicatedStore(net, ReplicationPolicy(replicas=0))
            net.attach_store(store)
            for i in range(24):
                store.seed_key(f"k-{i}", i)
            net.remove_peers(leavers, graceful=graceful)
            return store.loss_audit()["loss_probability"]

        assert survivors_loss(graceful=True) == 0.0
        assert survivors_loss(graceful=False) > 0.0


class TestRebindPeers:
    """Satellite: offline HIERAS peers can re-enter under new ring names."""

    def test_rebind_moves_peer_to_new_ring(self):
        net = build_bundle(CONFIG).hieras
        layer = net.depth
        rings = net.rings_at_layer(layer)
        peer = 5
        old = next(n for n, r in sorted(rings.items()) if peer in set(r.peers))
        new = next(n for n in sorted(rings) if n != old)
        net.remove_peers([peer])
        net.rebind_peers([peer], [[new]])
        net.revive_peers([peer])
        after = net.rings_at_layer(layer)
        assert peer in set(after[new].peers)
        assert peer not in set(after[old].peers)

    def test_rebind_rejects_alive_peers_and_bad_shapes(self):
        net = build_bundle(CONFIG).hieras
        with pytest.raises(ValueError):
            net.rebind_peers([0], [["anything"]])  # still alive
        net.remove_peers([0])
        with pytest.raises(ValueError):
            net.rebind_peers([0], [])  # shape mismatch
        with pytest.raises(ValueError):
            net.rebind_peers([0], [["a", "b"]])  # depth-1 names required


class TestBench:
    def test_bench_document_and_gates(self, tmp_path):
        doc = run_bench_scenarios(seed=7, scenarios=("regional_failure",))
        assert doc["schema"] == SCHEMA
        cells = doc["metrics"]["scenarios"]["regional_failure"]
        assert set(cells) == {"chord", "hieras"}
        for cell in cells.values():
            assert cell["notes"]["ring_size"] > 0
            assert cell["crashed_final"] == cell["notes"]["ring_size"]
        path = write_bench_scenarios(doc, tmp_path / "BENCH_scenarios.json")
        again = json.loads(path.read_text())
        assert again["metrics"] == json.loads(json.dumps(doc["metrics"]))

    def test_check_gates_flags_regressions(self):
        doc = {
            "metrics": {
                "scenarios": {
                    "regional_failure": {
                        "hieras": {
                            "availability_min": 0.1,
                            "availability_final": 1.0,
                            "recovery_ms": -1.0,
                            "loss_probability": 0.9,
                        },
                        "chord": {
                            "availability_min": 0.9,
                            "recovery_ms": 100.0,
                            "loss_probability": 0.0,
                        },
                    }
                }
            }
        }
        violations = check_gates(doc)
        assert any("below floor" in v for v in violations)
        assert any("never re-crossed" in v for v in violations)
        assert any("above ceiling" in v for v in violations)

    def test_check_gates_reports_missing_cells(self):
        violations = check_gates({"metrics": {"scenarios": {}}})
        assert violations and all("missing" in v for v in violations)
