"""Property and unit tests for circular-interval arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import (
    clockwise_distance,
    in_interval,
    in_interval_closed,
    in_interval_open,
    ring_distance,
)

SIZE = 256
ids = st.integers(min_value=0, max_value=SIZE - 1)


class TestClockwiseDistance:
    def test_zero_for_same(self):
        assert clockwise_distance(5, 5, SIZE) == 0

    def test_forward(self):
        assert clockwise_distance(5, 10, SIZE) == 5

    def test_wraps(self):
        assert clockwise_distance(250, 3, SIZE) == 9

    @given(ids, ids)
    def test_range(self, a, b):
        assert 0 <= clockwise_distance(a, b, SIZE) < SIZE

    @given(ids, ids)
    def test_antisymmetry(self, a, b):
        d1 = clockwise_distance(a, b, SIZE)
        d2 = clockwise_distance(b, a, SIZE)
        assert (d1 + d2) % SIZE == 0


class TestRingDistance:
    def test_shortest_side(self):
        assert ring_distance(0, 255, SIZE) == 1
        assert ring_distance(0, 128, SIZE) == 128

    @given(ids, ids)
    def test_symmetric(self, a, b):
        assert ring_distance(a, b, SIZE) == ring_distance(b, a, SIZE)

    @given(ids, ids)
    def test_bounded_by_half(self, a, b):
        assert ring_distance(a, b, SIZE) <= SIZE // 2


class TestInInterval:
    def test_half_open_basics(self):
        assert in_interval(5, 1, 10, SIZE)
        assert in_interval(10, 1, 10, SIZE)  # closed at b
        assert not in_interval(1, 1, 10, SIZE)  # open at a
        assert not in_interval(11, 1, 10, SIZE)

    def test_wrapping(self):
        assert in_interval(2, 250, 10, SIZE)
        assert in_interval(255, 250, 10, SIZE)
        assert not in_interval(100, 250, 10, SIZE)

    def test_degenerate_full_ring(self):
        # a == b means the full ring for the half-open arc.
        assert in_interval(42, 7, 7, SIZE)
        assert in_interval(7, 7, 7, SIZE)

    def test_open_excludes_both_ends(self):
        assert not in_interval_open(1, 1, 10, SIZE)
        assert not in_interval_open(10, 1, 10, SIZE)
        assert in_interval_open(2, 1, 10, SIZE)

    def test_open_degenerate(self):
        assert in_interval_open(8, 7, 7, SIZE)
        assert not in_interval_open(7, 7, 7, SIZE)

    def test_closed_includes_both_ends(self):
        assert in_interval_closed(1, 1, 10, SIZE)
        assert in_interval_closed(10, 1, 10, SIZE)
        assert not in_interval_closed(0, 1, 10, SIZE)

    def test_closed_degenerate_single_point(self):
        assert in_interval_closed(7, 7, 7, SIZE)
        assert not in_interval_closed(8, 7, 7, SIZE)

    @given(ids, ids, ids)
    def test_half_open_equals_definition(self, x, a, b):
        # x in (a, b] iff walking clockwise from a reaches x before
        # passing b (and x != a).
        expected = (
            a != b
            and 0 < clockwise_distance(a, x, SIZE) <= clockwise_distance(a, b, SIZE)
        ) or (a == b)
        assert in_interval(x, a, b, SIZE) == expected

    @given(ids, ids, ids)
    def test_open_implies_half_open(self, x, a, b):
        if in_interval_open(x, a, b, SIZE):
            assert in_interval(x, a, b, SIZE)

    @given(ids, ids, ids)
    def test_half_open_implies_closed(self, x, a, b):
        if a != b and in_interval(x, a, b, SIZE):
            assert in_interval_closed(x, a, b, SIZE)

    @given(ids, ids, ids)
    def test_partition(self, x, a, b):
        # For a != b, every x is in exactly one of (a, b] and (b, a].
        if a != b:
            assert in_interval(x, a, b, SIZE) != in_interval(x, b, a, SIZE)

    @given(ids, ids)
    def test_complement_sizes(self, a, b):
        if a != b:
            count_ab = sum(in_interval(x, a, b, SIZE) for x in range(SIZE))
            assert count_ab == clockwise_distance(a, b, SIZE)
