"""Tests for the Tapestry baseline (surrogate routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.tapestry import TapestryNetwork, TapestryParams
from repro.util.ids import IdSpace


@pytest.fixture(scope="module")
def net():
    space = IdSpace(16)
    ids = space.sample_unique_ids(150, np.random.default_rng(0))
    return TapestryNetwork(space, ids, seed=1)


class TestConstruction:
    def test_digit_width_must_divide_bits(self):
        space = IdSpace(10)
        ids = space.sample_unique_ids(8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            TapestryNetwork(space, ids, params=TapestryParams(b=4))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TapestryParams(b=0)
        with pytest.raises(ValueError):
            TapestryParams(pns_samples=0)

    def test_rejects_duplicates(self):
        space = IdSpace(16)
        with pytest.raises(ValueError):
            TapestryNetwork(space, np.asarray([5, 5], dtype=np.uint64))


class TestSurrogateRoot:
    def test_exact_id_is_its_own_root(self, net):
        for peer in (0, 7, 42):
            assert net.owner_of(net.id_of(peer)) == peer

    def test_root_unique_from_any_source(self, net, rng):
        """Surrogate routing's defining property: every source reaches
        the same root for the same key."""
        for _ in range(60):
            k = int(rng.integers(0, net.space.size))
            root = net.owner_of(k)
            for s in rng.integers(0, net.n_peers, 5):
                assert net.route(int(s), k).owner == root

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_root_property(self, key):
        space = IdSpace(16)
        ids = space.sample_unique_ids(40, np.random.default_rng(3))
        net = TapestryNetwork(space, ids, seed=3)
        root = net.owner_of(key)
        for s in (0, 13, 39):
            assert net.route(s, key).owner == root


class TestRouting:
    def test_path_well_formed(self, net, rng):
        for _ in range(150):
            s = int(rng.integers(0, net.n_peers))
            k = int(rng.integers(0, net.space.size))
            r = net.route(s, k)
            assert r.path[0] == s and r.path[-1] == r.owner
            assert r.hops == len(r.path) - 1

    def test_hops_logarithmic_base_16(self, net, rng):
        hops = [
            net.route(int(rng.integers(0, 150)), int(rng.integers(0, net.space.size))).hops
            for _ in range(300)
        ]
        assert np.mean(hops) <= np.log(150) / np.log(16) + 2.0

    def test_prefix_monotone(self, net, rng):
        """Along a route, the shared prefix with the key never shrinks."""
        for _ in range(80):
            s = int(rng.integers(0, net.n_peers))
            k = int(rng.integers(0, net.space.size))
            r = net.route(s, k)

            def shared(a):
                level = 0
                while level < 4 and net._digit(a, level) == net._digit(k, level):
                    level += 1
                return level

            prefixes = [shared(net.id_of(p)) for p in r.path]
            # Surrogate hops can stay at the same level, never go back.
            assert all(b >= a for a, b in zip(prefixes, prefixes[1:]))

    def test_pns_latency_beats_chord(self, small_deployment):
        from repro.dht.chord import ChordNetwork

        attachment, peer_latency, space, ids = small_deployment
        tapestry = TapestryNetwork(space, ids, latency=peer_latency, seed=5)
        chord = ChordNetwork(space, ids, latency=peer_latency)
        rng = np.random.default_rng(6)
        t_lat = c_lat = 0.0
        for _ in range(250):
            s = int(rng.integers(0, 200))
            k = int(rng.integers(0, space.size))
            t_lat += tapestry.route(s, k).latency_ms
            c_lat += chord.route(s, k).latency_ms
        assert t_lat < c_lat

    def test_singleton_network(self):
        space = IdSpace(16)
        net = TapestryNetwork(space, np.asarray([1234], dtype=np.uint64))
        r = net.route(0, 9999)
        assert r.owner == 0 and r.hops == 0
