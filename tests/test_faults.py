"""Tests for the fault-injection subsystem and failure-aware routing."""

import numpy as np
import pytest

from repro.dht.base import ZeroLatency
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultState,
    LossyContext,
    RetryPolicy,
    ScaledLatency,
)
from repro.sim.engine import Simulator
from repro.sim.network import Message, SimNetwork
from repro.sim.node import SimNode
from repro.util.rng import make_rng


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(successor_fallback=-1)

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(timeout_ms=100.0, backoff=2.0, jitter=0.0)
        rng = make_rng(0)
        assert policy.attempt_timeout_ms(0, rng) == 100.0
        assert policy.attempt_timeout_ms(1, rng) == 200.0
        assert policy.attempt_timeout_ms(2, rng) == 400.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(timeout_ms=100.0, backoff=1.0, jitter=0.1)
        rng = make_rng(1)
        penalties = [policy.attempt_timeout_ms(0, rng) for _ in range(200)]
        assert all(90.0 <= p <= 110.0 for p in penalties)
        assert max(penalties) > min(penalties)  # jitter actually applied

    def test_worst_case_bounds_any_contact(self):
        policy = RetryPolicy(timeout_ms=50.0, max_retries=2, backoff=2.0, jitter=0.1)
        rng = make_rng(2)
        total = sum(policy.attempt_timeout_ms(k, rng) for k in range(policy.max_attempts))
        assert total <= policy.worst_case_contact_ms()


class TestFaultPlan:
    def test_same_seed_same_events(self):
        def build():
            return (
                FaultPlan(seed=11)
                .crash_fraction(at_ms=100.0, fraction=0.25)
                .loss_burst(at_ms=50.0, rate=0.2, duration_ms=500.0)
                .partition(at_ms=200.0, duration_ms=300.0)
                .latency_spike(at_ms=10.0, factor=3.0, duration_ms=20.0)
            )

        assert build().events(64) == build().events(64)

    def test_different_seed_different_crash_set(self):
        a = FaultPlan(seed=1).crash_fraction(at_ms=0.0, fraction=0.3).events(100)
        b = FaultPlan(seed=2).crash_fraction(at_ms=0.0, fraction=0.3).events(100)
        assert a[0].peers != b[0].peers
        assert len(a[0].peers) == len(b[0].peers) == 30

    def test_durations_expand_to_start_end_pairs(self):
        events = FaultPlan().loss_burst(at_ms=100.0, rate=0.5, duration_ms=400.0).events(10)
        assert [(e.time_ms, e.kind) for e in events] == [
            (100.0, "loss_start"),
            (500.0, "loss_end"),
        ]
        assert events[0].rate == 0.5

    def test_events_time_sorted_stable(self):
        events = (
            FaultPlan(seed=3)
            .crash_peers(at_ms=500.0, peers=[1])
            .loss_burst(at_ms=200.0, rate=0.3, duration_ms=300.0)
            .events(10)
        )
        # loss burst ends exactly when the crash lands; builder order wins ties.
        assert [e.kind for e in events] == ["loss_start", "crash", "loss_end"]

    def test_partition_labels_every_peer(self):
        events = FaultPlan(seed=4).partition(at_ms=0.0, duration_ms=10.0, n_groups=3).events(50)
        start = events[0]
        assert start.kind == "partition_start"
        assert len(start.groups) == 50
        assert set(start.groups) <= {0, 1, 2}

    def test_spec_streams_independent(self):
        """Adding an unrelated spec must not perturb another spec's draws."""
        base = FaultPlan(seed=5).crash_fraction(at_ms=10.0, fraction=0.2)
        extended = (
            FaultPlan(seed=5)
            .crash_fraction(at_ms=10.0, fraction=0.2)
            .loss_burst(at_ms=0.0, rate=0.1, duration_ms=5.0)
        )
        crash_base = [e for e in base.events(40) if e.kind == "crash"][0]
        crash_ext = [e for e in extended.events(40) if e.kind == "crash"][0]
        assert crash_base.peers == crash_ext.peers

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_fraction(at_ms=-1.0, fraction=0.1)
        with pytest.raises(ValueError):
            FaultPlan().crash_fraction(at_ms=0.0, fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan().loss_burst(at_ms=0.0, rate=1.0, duration_ms=10.0)
        with pytest.raises(ValueError):
            FaultPlan().latency_spike(at_ms=0.0, factor=0.5, duration_ms=10.0)
        with pytest.raises(ValueError):
            FaultPlan().partition(at_ms=0.0, duration_ms=10.0, n_groups=1)
        with pytest.raises(ValueError):
            FaultPlan().events(0)


class TestFaultState:
    def test_reachability(self):
        state = FaultState(4)
        assert state.reachable(0, 1)
        state.dead[1] = True
        assert not state.reachable(0, 1)
        assert not state.reachable(1, 0)
        state.partition = np.array([0, 0, 1, 1])
        assert state.reachable(2, 3)
        assert not state.reachable(0, 2)

    def test_live_peers(self):
        state = FaultState(5)
        state.dead[[1, 3]] = True
        np.testing.assert_array_equal(state.live_peers(), [0, 2, 4])


class TestFaultInjector:
    def test_advance_applies_events_once(self):
        plan = FaultPlan(seed=6).crash_peers(at_ms=10.0, peers=[2]).crash_peers(
            at_ms=20.0, peers=[3]
        )
        injector = FaultInjector(plan, 8)
        assert injector.advance_to(5.0) == []
        fired = injector.advance_to(15.0)
        assert [e.peers for e in fired] == [(2,)]
        assert injector.state.is_dead(2) and not injector.state.is_dead(3)
        injector.advance_to(100.0)
        assert injector.state.is_dead(3)
        with pytest.raises(ValueError):
            injector.advance_to(50.0)  # clock cannot run backwards

    def test_revive_undoes_crash(self):
        plan = (
            FaultPlan()
            .crash_peers(at_ms=1.0, peers=[0])
            .revive_peers(at_ms=2.0, peers=[0])
        )
        injector = FaultInjector(plan, 2)
        injector.advance_to(3.0)
        assert not injector.state.is_dead(0)

    def test_contact_no_faults_is_free(self):
        injector = FaultInjector(FaultPlan(), 4)
        ctx = LossyContext()
        before = injector.rng.bit_generator.state["state"]["state"]
        assert injector.contact(0, 1, ctx)
        assert ctx.timeouts == 0 and ctx.retry_latency_ms == 0.0
        # fast path consumed no randomness
        assert injector.rng.bit_generator.state["state"]["state"] == before

    def test_contact_dead_target_exhausts_attempts(self):
        policy = RetryPolicy(timeout_ms=100.0, max_retries=2, backoff=2.0, jitter=0.0)
        injector = FaultInjector(FaultPlan().crash_peers(at_ms=0.0, peers=[1]), 4, policy=policy)
        injector.advance_to(0.0)
        ctx = LossyContext()
        assert not injector.contact(0, 1, ctx)
        assert ctx.timeouts == policy.max_attempts == 3
        assert ctx.retry_latency_ms == 100.0 + 200.0 + 400.0

    def test_same_plan_replays_identically(self):
        plan = FaultPlan(seed=9).loss_burst(at_ms=0.0, rate=0.4, duration_ms=100.0)

        def run():
            injector = FaultInjector(plan, 4)
            injector.advance_to(0.0)
            ctx = LossyContext()
            outcomes = [injector.contact(0, 1, ctx) for _ in range(100)]
            return outcomes, ctx.timeouts, ctx.retry_latency_ms

        assert run() == run()


class _Echo(SimNode):
    """Minimal protocol node: records every delivered message."""

    def __init__(self, peer, sim, net):
        super().__init__(peer, sim, net)
        self.inbox = []

    def handle_message(self, message: Message) -> None:
        self.inbox.append(message.kind)


class _Fixed(ZeroLatency):
    """Constant 10 ms per link (ZeroLatency with pair/pairs overridden)."""

    def pair(self, u, v):
        return 10.0

    def pairs(self, us, vs):
        return np.full(len(us), 10.0)


class TestInstallSim:
    """The same FaultPlan drives the discrete-event stack."""

    def _net(self, latency=None, n=4):
        sim = Simulator()
        net = SimNetwork(sim, latency or ZeroLatency(), loss_seed=5)
        nodes = [_Echo(p, sim, net) for p in range(n)]
        return sim, net, nodes

    def test_crash_and_revive_flip_node_liveness(self):
        sim, net, nodes = self._net()
        plan = (
            FaultPlan()
            .crash_peers(at_ms=10.0, peers=[1, 2])
            .revive_peers(at_ms=20.0, peers=[2])
        )
        FaultInjector(plan, 4).install_sim(sim, net)
        sim.run()
        assert not nodes[1].alive
        assert nodes[2].alive and nodes[0].alive

    def test_loss_burst_applies_then_restores_baseline(self):
        sim, net, nodes = self._net()
        plan = FaultPlan().loss_burst(at_ms=0.0, rate=0.5, duration_ms=100.0)
        FaultInjector(plan, 4).install_sim(sim, net)
        for t in (1.0, 150.0):
            sim.schedule_at(
                t, lambda: [nodes[0].send(1, "probe") for _ in range(200)]
            )
        sim.run()
        assert 0 < net.messages_lost < 200  # burst lost some of the first wave
        assert net.loss_rate == 0.0  # baseline restored after the burst
        # second wave (after loss_end) arrived intact
        assert len(nodes[1].inbox) == 400 - net.messages_lost

    def test_partition_blocks_cross_side_traffic(self):
        sim, net, nodes = self._net(n=8)
        plan = FaultPlan(seed=12).partition(at_ms=0.0, duration_ms=50.0)
        injector = FaultInjector(plan, 8)
        injector.install_sim(sim, net)
        sim.run(until=1.0)
        sides = injector.state.partition
        assert net.drop_filter is not None
        src = 0
        same = next(p for p in range(1, 8) if sides[p] == sides[src])
        other = next(p for p in range(1, 8) if sides[p] != sides[src])
        nodes[src].send(same, "intra")
        nodes[src].send(other, "inter")
        sim.run(until=40.0)
        assert nodes[same].inbox == ["intra"]
        assert nodes[other].inbox == []
        sim.run()  # partition_end at t=50
        assert net.drop_filter is None
        nodes[src].send(other, "inter-again")
        sim.run()
        assert nodes[other].inbox == ["inter-again"]

    def test_latency_spike_scales_delivery_delay(self):
        sim, net, nodes = self._net(latency=_Fixed())
        plan = FaultPlan().latency_spike(at_ms=0.0, factor=5.0, duration_ms=100.0)
        FaultInjector(plan, 4).install_sim(sim, net)
        assert isinstance(net.latency, ScaledLatency)
        sim.run(until=1.0)
        nodes[0].send(1, "slow")
        sim.run(until=200.0)
        # 10 ms link under a 5x spike: delivered at ~51 ms, not ~11 ms.
        assert net.total_delay_ms == 50.0
        sim.run()
        assert net.latency.factor == 1.0  # spike_end restored the factor


class TestLossyRoutingStatic:
    def test_no_faults_matches_plain_route(self, small_networks):
        """An empty plan makes route_lossy a penalty-free route()."""
        chord, hieras = small_networks
        rng = make_rng(21)
        for net in (chord, hieras):
            injector = FaultInjector(FaultPlan(), net.n_peers)
            for _ in range(50):
                src = int(rng.integers(0, net.n_peers))
                key = int(rng.integers(0, net.space.size))
                plain = net.route(src, key)
                lossy = net.route_lossy(src, key, injector=injector)
                assert lossy.success
                assert lossy.owner == plain.owner
                assert lossy.timeouts == 0
                assert lossy.retry_latency_ms == 0.0
                assert lossy.total_latency_ms == lossy.latency_ms

    def test_acceptance_20pct_crash_mid_run(self, small_networks):
        """ISSUE acceptance: a plan killing 20% of peers mid-run still
        lets failure-aware lookups complete with measured success rate
        and timeout-penalised latency, while plain route() is untouched."""
        chord, hieras = small_networks
        rng = make_rng(22)
        requests = [
            (int(rng.integers(0, chord.n_peers)), int(rng.integers(0, chord.space.size)))
            for _ in range(200)
        ]
        for net in (chord, hieras):
            plan = FaultPlan(seed=13).crash_fraction(at_ms=100.0, fraction=0.2)
            injector = FaultInjector(plan, net.n_peers)
            baseline = [net.route(s, k).owner for s, k in requests[:20]]
            attempted = succeeded = timeouts = 0
            penalised = 0.0
            for i, (src, key) in enumerate(requests):
                injector.advance_to(float(i))
                if injector.state.is_dead(src):
                    continue
                out = net.route_lossy(src, key, injector=injector)
                attempted += 1
                timeouts += out.timeouts
                penalised += out.retry_latency_ms
                if out.success:
                    succeeded += 1
                    assert not injector.state.is_dead(out.owner)
                else:
                    assert out.owner == -1
            assert injector.state.dead.sum() == round(0.2 * net.n_peers)
            assert attempted > 100
            assert succeeded / attempted > 0.95
            assert timeouts > 0 and penalised > 0.0  # dead fingers were hit
            # plain route() still uses the intact snapshot: same owners,
            # no liveness requirement, no new fields set.
            after = [net.route(s, k) for s, k in requests[:20]]
            assert [r.owner for r in after] == baseline
            assert all(r.success and r.timeouts == 0 for r in after)

    def test_dead_source_rejected(self, small_networks):
        chord, _ = small_networks
        injector = FaultInjector(
            FaultPlan().crash_peers(at_ms=0.0, peers=[7]), chord.n_peers
        )
        injector.advance_to(0.0)
        with pytest.raises(ValueError):
            chord.route_lossy(7, 123, injector=injector)

    def test_unresolvable_lookup_reports_failure(self, small_networks):
        """Crash every peer but the source: no live owner exists."""
        chord, _ = small_networks
        others = [p for p in range(chord.n_peers) if p != 0]
        injector = FaultInjector(
            FaultPlan().crash_peers(at_ms=0.0, peers=others), chord.n_peers
        )
        injector.advance_to(0.0)
        out = chord.route_lossy(0, 999, injector=injector)
        # either the source already owns the key, or the lookup must fail
        if not out.success:
            assert out.owner == -1
        else:
            assert out.owner == 0


class TestRingTableSurvival:
    def test_live_host_of_walks_replicas(self, small_networks):
        _, hieras = small_networks
        directory = hieras.directory
        name = directory.names()[0]
        g = hieras.global_ring
        chain = directory.replica_hosts(name, g.ids, g.peers)
        assert directory.live_host_of(name, g.ids, g.peers, lambda p: False) == chain[0]
        # primary dead -> first replica answers
        assert (
            directory.live_host_of(name, g.ids, g.peers, lambda p: p == chain[0])
            == chain[1]
        )
        with pytest.raises(LookupError):
            directory.live_host_of(name, g.ids, g.peers, lambda p: True)


class TestProtocolResilience:
    def test_plan_drives_protocol_stack(self):
        """Acceptance: the same FaultPlan machinery drives the sim stack
        and retrying lookups resolve to correct live owners."""
        from repro.experiments.resilience import run_protocol_resilience

        out = run_protocol_resilience(
            universe=12, n_rings=2, n_lookups=20, seed=3
        )
        assert out["crashed"] >= 2
        assert out["messages_lost"] > 0
        total = out["completed"] + out["failed"]
        assert total == 20
        assert out["completed"] >= 0.9 * total
        assert out["correct"] >= 0.9 * out["completed"]


class TestCrashRingAndRegion:
    """Deterministic member resolution for the topology-aware builders."""

    def test_crash_ring_resolves_sorted_members(self, small_networks):
        _, hieras = small_networks
        rings = hieras.rings_at_layer(hieras.depth)
        name = sorted(rings)[0]
        plan = FaultPlan(seed=5).crash_ring(at_ms=10.0, network=hieras, name=name)
        crash = plan.events(hieras.n_peers)[0]
        assert crash.kind == "crash"
        assert list(crash.peers) == sorted(int(p) for p in rings[name].peers)

    def test_crash_ring_unknown_name_rejected(self, small_networks):
        _, hieras = small_networks
        with pytest.raises(ValueError):
            FaultPlan().crash_ring(at_ms=0.0, network=hieras, name="no-such-ring")

    def test_crash_region_matches_stub_domain(self, small_deployment):
        attachment, _, _, _ = small_deployment
        topo = attachment.topology
        routers = np.asarray(attachment.router_of_peer)
        domain = int(topo.stub_domain_of[routers[0]])
        plan = FaultPlan().crash_region(at_ms=1.0, attachment=attachment, domain=domain)
        crash = plan.events(len(routers))[0]
        expected = sorted(
            int(p) for p in np.flatnonzero(topo.stub_domain_of[routers] == domain)
        )
        assert list(crash.peers) == expected
        assert 0 in crash.peers

    def test_crash_region_empty_domain_rejected(self, small_deployment):
        attachment, _, _, _ = small_deployment
        topo = attachment.topology
        empty = int(topo.stub_domain_of.max()) + 99
        with pytest.raises(ValueError):
            FaultPlan().crash_region(at_ms=0.0, attachment=attachment, domain=empty)


class TestEventOrderingAndPartitionDeterminism:
    def test_mixed_builders_sort_by_time_with_stable_ties(self, small_networks):
        _, hieras = small_networks
        name = sorted(hieras.rings_at_layer(hieras.depth))[0]
        events = (
            FaultPlan(seed=8)
            .crash_ring(at_ms=300.0, network=hieras, name=name)
            .loss_burst(at_ms=100.0, rate=0.2, duration_ms=200.0)
            .partition(at_ms=300.0, duration_ms=50.0)
            .events(hieras.n_peers)
        )
        times = [e.time_ms for e in events]
        assert times == sorted(times)
        # Both the loss_end, the crash and the partition_start land at
        # t=300; stable argsort preserves builder declaration order.
        assert [e.kind for e in events] == [
            "loss_start",
            "crash",
            "loss_end",
            "partition_start",
            "partition_end",
        ]

    def test_partition_groups_deterministic_per_seed(self):
        def groups(seed):
            events = (
                FaultPlan(seed=seed)
                .partition(at_ms=0.0, duration_ms=10.0, n_groups=3)
                .events(60)
            )
            return events[0].groups

        assert groups(21) == groups(21)
        assert groups(21) != groups(22)

    def test_partition_groups_independent_of_later_specs(self):
        """Streams are keyed by spec index: appending specs after the
        partition must not perturb its group assignment."""
        bare = FaultPlan(seed=13).partition(at_ms=5.0, duration_ms=10.0)
        padded = (
            FaultPlan(seed=13)
            .partition(at_ms=5.0, duration_ms=10.0)
            .crash_fraction(at_ms=0.0, fraction=0.1)
        )
        bare_groups = [e for e in bare.events(40) if e.kind == "partition_start"][0].groups
        padded_groups = [e for e in padded.events(40) if e.kind == "partition_start"][0].groups
        assert bare_groups == padded_groups


class TestReviveAfterPartition:
    def test_revive_during_partition_respects_sides(self):
        plan = (
            FaultPlan(seed=17)
            .partition(at_ms=0.0, duration_ms=100.0, n_groups=2)
            .crash_peers(at_ms=10.0, peers=[1])
            .revive_peers(at_ms=20.0, peers=[1])
        )
        injector = FaultInjector(plan, 20)
        groups = [e for e in plan.events(20) if e.kind == "partition_start"][0].groups
        same = next(p for p in range(2, 20) if groups[p] == groups[1])
        other = next(p for p in range(2, 20) if groups[p] != groups[1])
        injector.advance_to(15.0)
        assert injector.state.is_dead(1)
        injector.advance_to(30.0)
        # Revived mid-partition: reachable from its own side only.
        assert not injector.state.is_dead(1)
        assert injector.state.reachable(same, 1)
        assert not injector.state.reachable(other, 1)
        injector.advance_to(150.0)
        # Partition healed: both sides reach the revived peer.
        assert injector.state.reachable(other, 1)

    def test_revive_exactly_at_partition_end_is_fully_reachable(self):
        plan = (
            FaultPlan(seed=19)
            .partition(at_ms=0.0, duration_ms=50.0)
            .crash_peers(at_ms=5.0, peers=[3])
            .revive_peers(at_ms=50.0, peers=[3])
        )
        injector = FaultInjector(plan, 10)
        injector.advance_to(50.0)
        assert not injector.state.is_dead(3)
        assert all(injector.state.reachable(p, 3) for p in range(10) if p != 3)
