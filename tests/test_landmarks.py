"""Tests for landmark sets (§2.3)."""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.landmarks import LandmarkSet


class TestBasics:
    def test_measure_shape(self, small_topology, small_latency):
        lms = LandmarkSet(routers=small_topology.stub_routers[:4])
        nodes = small_topology.stub_routers[10:30]
        d = lms.measure(small_latency, nodes)
        assert d.shape == (20, 4)

    def test_measure_matches_model(self, small_topology, small_latency):
        lms = LandmarkSet(routers=small_topology.stub_routers[:2])
        nodes = small_topology.stub_routers[5:8]
        d = lms.measure(small_latency, nodes)
        assert d[0, 0] == small_latency.pair(
            int(nodes[0]), int(small_topology.stub_routers[0])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LandmarkSet(routers=np.asarray([], dtype=np.int64))


class TestFailures:
    def test_failed_landmark_excluded(self, small_topology, small_latency):
        lms = LandmarkSet(routers=small_topology.stub_routers[:4])
        lms.fail(2)
        assert lms.n_alive == 3
        d = lms.measure(small_latency, small_topology.stub_routers[10:15])
        assert d.shape == (5, 3)

    def test_recover(self, small_topology, small_latency):
        lms = LandmarkSet(routers=small_topology.stub_routers[:3])
        lms.fail(0)
        lms.recover(0)
        assert lms.n_alive == 3

    def test_cannot_fail_last(self):
        lms = LandmarkSet(routers=np.asarray([5]))
        with pytest.raises(ValueError):
            lms.fail(0)

    def test_binning_after_failure_drops_column(self, small_topology, small_latency):
        """End-to-end §2.3: orders computed from the survivors equal
        the original orders with the failed column dropped."""
        lms = LandmarkSet(routers=small_topology.stub_routers[:4])
        nodes = small_topology.stub_routers[20:60]
        scheme = BinningScheme.default_for_depth(2)
        before = scheme.orders(lms.measure(small_latency, nodes))
        dropped = before.drop_landmark(1)
        lms.fail(1)
        after = scheme.orders(lms.measure(small_latency, nodes))
        for i in range(len(nodes)):
            assert after.order_of(i) == dropped.order_of(i)


class TestLogicalLandmarks:
    def test_distance_is_group_minimum(self, small_topology, small_latency):
        groups = [small_topology.stub_routers[:3], small_topology.stub_routers[3:5]]
        lms = LandmarkSet.logical(groups)
        nodes = small_topology.stub_routers[10:12]
        d = lms.measure(small_latency, nodes)
        for i, node in enumerate(nodes):
            expected = min(
                small_latency.pair(int(node), int(m)) for m in groups[0]
            )
            assert d[i, 0] == expected

    def test_group_validation(self):
        with pytest.raises(ValueError):
            LandmarkSet.logical([np.asarray([], dtype=np.int64)])

    def test_member_arrays_have_explicit_dtype(self):
        # PERF003 regression: members built from plain python lists must
        # not widen to the platform default; the SoA contract is int64.
        lms = LandmarkSet.logical([[1, 2, 3], [4, 5]])
        assert all(m.dtype == np.int64 for m in lms.members)
