"""Tests for Chord with proximity finger selection."""

import numpy as np
import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.chord_pfs import PfsChordNetwork
from repro.util.ids import IdSpace
from repro.util.intervals import clockwise_distance, in_interval_open


@pytest.fixture(scope="module")
def nets(small_deployment):
    attachment, peer_latency, space, ids = small_deployment
    pfs = PfsChordNetwork(space, ids, latency=peer_latency, seed=1)
    chord = ChordNetwork(space, ids, latency=peer_latency)
    return chord, pfs


class TestConstruction:
    def test_rejects_duplicates(self):
        space = IdSpace(16)
        with pytest.raises(ValueError):
            PfsChordNetwork(space, np.asarray([3, 3], dtype=np.uint64))

    def test_rejects_bad_samples(self):
        space = IdSpace(16)
        ids = space.sample_unique_ids(10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            PfsChordNetwork(space, ids, pns_samples=0)


class TestFingers:
    def test_fingers_in_correct_intervals(self, nets):
        """PFS may pick ANY node in [n+2^(i-1), n+2^i) — but only there."""
        _, pfs = nets
        size = pfs.space.size
        for peer in range(0, 40, 5):
            node_id = pfs.id_of(peer)
            for i in range(1, pfs.space.bits + 1):
                cand = pfs.finger(peer, i)
                if cand is None:
                    continue
                lo = (node_id + (1 << (i - 1))) % size
                hi = (node_id + (1 << i)) % size
                cand_id = pfs.id_of(cand)
                assert cand_id == lo or in_interval_open(cand_id, lo, hi, size) or (
                    clockwise_distance(lo, cand_id, size)
                    < clockwise_distance(lo, hi, size)
                )

    def test_fingers_prefer_low_latency(self, nets, small_deployment):
        """The PFS finger should beat the plain-Chord finger on latency
        on average (that is its entire point)."""
        chord, pfs = nets
        _, peer_latency, _, _ = small_deployment
        gains = []
        for peer in range(30):
            plain_fingers = {e.index: e.peer for e in chord.finger_table(peer)}
            for i, plain_peer in plain_fingers.items():
                pfs_peer = pfs.finger(peer, i)
                if pfs_peer is None or plain_peer == peer:
                    continue
                gains.append(
                    peer_latency.pair(peer, plain_peer)
                    - peer_latency.pair(peer, pfs_peer)
                )
        assert np.mean(gains) > 0


class TestRouting:
    def test_same_owner_as_chord(self, nets, rng):
        chord, pfs = nets
        for _ in range(300):
            s = int(rng.integers(0, pfs.n_peers))
            k = int(rng.integers(0, pfs.space.size))
            r = pfs.route(s, k)
            assert r.owner == chord.owner_of(k)
            assert r.path[-1] == r.owner

    def test_hops_comparable_to_chord(self, nets, rng):
        chord, pfs = nets
        ph = ch = 0
        for _ in range(400):
            s = int(rng.integers(0, pfs.n_peers))
            k = int(rng.integers(0, pfs.space.size))
            ph += pfs.route(s, k).hops
            ch += chord.route(s, k).hops
        # Same geometry: hop counts within ~25% of each other.
        assert abs(ph - ch) / ch < 0.25

    def test_latency_beats_chord(self, nets, rng):
        chord, pfs = nets
        pl = cl = 0.0
        for _ in range(400):
            s = int(rng.integers(0, pfs.n_peers))
            k = int(rng.integers(0, pfs.space.size))
            pl += pfs.route(s, k).latency_ms
            cl += chord.route(s, k).latency_ms
        assert pl < cl

    def test_zero_latency_model_matches_chord_behaviour(self, rng):
        """Without latency information PFS has no signal; routing still
        terminates correctly."""
        space = IdSpace(16)
        ids = space.sample_unique_ids(60, np.random.default_rng(2))
        pfs = PfsChordNetwork(space, ids, seed=3)
        chord = ChordNetwork(space, ids)
        for _ in range(100):
            s = int(rng.integers(0, 60))
            k = int(rng.integers(0, space.size))
            assert pfs.route(s, k).owner == chord.owner_of(k)
