"""Tests for the perf-baseline pipeline and its CLI front-end."""

import json

import pytest

from repro.experiments.baseline import SCHEMA, run_perf_baseline, write_baseline


@pytest.fixture(scope="module")
def small_doc():
    return run_perf_baseline(n_peers=200, n_requests=400, seed=7)


class TestPipeline:
    def test_document_shape(self, small_doc):
        assert small_doc["schema"] == SCHEMA
        assert set(small_doc["phases"]) == {
            "build", "trace", "chord_routes", "hieras_routes", "protocol_smoke",
            "peak_rss",
        }
        assert small_doc["phases"]["peak_rss"]["peak_rss_mb"] > 0.0
        for name, phase in small_doc["phases"].items():
            if name != "peak_rss":
                assert phase["wall_ms"] >= 0.0
        assert set(small_doc["metrics"]) == {"chord", "hieras", "protocol"}

    def test_both_stacks_covered(self, small_doc):
        for net in ("chord", "hieras"):
            m = small_doc["metrics"][net]
            assert m["lookups"] == small_doc["config"]["n_requests"]
            assert m["hops"]["count"] == 400.0
            assert m["latency_ms"]["mean"] > 0.0
        assert small_doc["metrics"]["chord"]["low_layer_hop_share"] == 0.0
        assert small_doc["metrics"]["hieras"]["low_layer_hop_share"] > 0.0

    def test_protocol_smoke_counters(self, small_doc):
        proto = small_doc["metrics"]["protocol"]
        assert proto["lookups_completed"] == proto["lookups_issued"]
        assert proto["counters"]["sim.messages_sent"] > 0
        assert proto["counters"]["sim.events_processed"] > 0
        assert proto["counters"]["protocol.lookups"] >= proto["lookups_issued"]

    def test_same_seed_reproduces_metrics(self, small_doc):
        again = run_perf_baseline(n_peers=200, n_requests=400, seed=7)
        # Wall times may differ; the metrics section must not.
        assert again["metrics"] == small_doc["metrics"]
        assert again["config"] == small_doc["config"]

    def test_different_seed_differs(self, small_doc):
        other = run_perf_baseline(n_peers=200, n_requests=400, seed=8)
        assert other["metrics"] != small_doc["metrics"]

    def test_write_is_stable_json(self, small_doc, tmp_path):
        p1 = write_baseline(small_doc, tmp_path / "a.json")
        p2 = write_baseline(small_doc, tmp_path / "b.json")
        assert p1.read_text() == p2.read_text()
        assert json.loads(p1.read_text())["schema"] == SCHEMA


class TestCli:
    def test_perf_baseline_subcommand_writes_artifact(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["perf-baseline", "--out", "BENCH_baseline.json"]) == 0
        out = capsys.readouterr().out
        assert "wrote BENCH_baseline.json" in out
        doc = json.loads((tmp_path / "BENCH_baseline.json").read_text())
        assert doc["schema"] == SCHEMA
        assert doc["metrics"]["hieras"]["low_layer_hop_share"] > 0.5
        for net in ("chord", "hieras"):
            assert doc["metrics"][net]["lookups"] == doc["config"]["n_requests"]

    def test_run_emits_metrics_artifact(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cli import main

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert main(["run", "table1"]) == 0
        artifact = tmp_path / "metrics_table1.json"
        assert artifact.exists()
        doc = json.loads(artifact.read_text())
        assert doc["experiment"] == "table1"
        assert doc["diverged"] is False
        assert "data" in doc
