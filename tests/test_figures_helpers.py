"""Tests for experiment-registry internals and misc public surface."""

import repro
from repro.experiments import figures
from repro.experiments.config import SimConfig


class TestHelpers:
    def test_claim_format(self):
        assert figures._claim(True, "yes").strip() == "[ok] yes"
        assert figures._claim(False, "no").strip() == "[DIVERGES] no"

    def test_requests_scales(self):
        assert figures._requests(True) > figures._requests(False)

    def test_sizes_full_vs_reduced(self):
        assert figures._sizes(True, "ts") == list(range(1000, 10_001, 1000))
        assert figures._sizes(False, "ts") == [1000, 2000, 3000, 4000]

    def test_sizes_inet_floor(self):
        for full in (True, False):
            for size in figures._sizes(full, "inet"):
                assert size * 1.25 >= 3000

    def test_pair_caches(self):
        config = SimConfig(n_peers=200, seed=3)
        a = figures._pair(config, 200)
        b = figures._pair(config, 200)
        assert a is b  # exact same tuple from the cache
        c = figures._pair(config, 300)
        assert c is not a


class TestDistConfig:
    def test_reduced_vs_full_scale(self):
        assert figures._dist_config(False, 1).n_peers == 4000
        assert figures._dist_config(True, 1).n_peers == 10_000

    def test_landmark_configs(self):
        counts, n = figures._landmark_configs(False, 1)
        assert 2 in counts and 12 in counts
        full_counts, full_n = figures._landmark_configs(True, 1)
        assert full_n > n
        assert len(full_counts) >= len(counts)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_names(self):
        assert hasattr(repro, "quick_network")
        assert hasattr(repro, "NetworkBundle")

    def test_dht_package_exports(self):
        import repro.dht as dht

        for name in dht.__all__:
            assert hasattr(dht, name), name

    def test_core_package_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_analysis_package_exports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_topology_package_exports(self):
        import repro.topology as topology

        for name in topology.__all__:
            assert hasattr(topology, name), name

    def test_sim_package_exports(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert hasattr(sim, name), name


class TestJoinCostMeasurement:
    def test_join_rows_shape(self):
        rows = figures._measure_join_costs(seed=1)
        assert [r["variant"] for r in rows] == ["chord", "hieras"]
        for row in rows:
            assert row["msgs_per_join"] >= 0

    def test_hieras_join_costs_more(self):
        """§3.4: HIERAS 'needs more operations ... when a node joins'."""
        rows = figures._measure_join_costs(seed=2)
        by = {r["variant"]: r["msgs_per_join"] for r in rows}
        assert by["hieras"] > by["chord"]
