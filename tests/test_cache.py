"""Tests for the ``repro.cache`` subsystem (DESIGN.md §9).

Covers the deterministic store (LRU / TTL+LRU), the policy object, the
cache-aware routing semantics over both stacks, the staleness story
under membership change and under the fault injector (the
cached-but-crashed-owner acceptance case), span/registry integration,
and replay determinism.
"""

import json

import numpy as np
import pytest

from repro.cache import CachedNetwork, CacheEntry, CachePolicy, NodeCache
from repro.cache.policy import EVICTION_MODES
from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.registry import MetricsRegistry
from repro.metrics.sinks import MemorySink
from repro.metrics.spans import SpanRecorder
from repro.util.ids import IdSpace


def build_stacks(n=200, seed=1, depth=2):
    """A (chord, hieras) pair sharing ids; ZeroLatency (hops matter)."""
    rng = np.random.default_rng(seed)
    space = IdSpace(16)
    ids = space.sample_unique_ids(n, rng)
    chord = ChordNetwork(space, ids)
    distances = rng.uniform(0, 300, size=(n, 4))
    orders = BinningScheme.default_for_depth(max(depth, 2)).orders(distances)
    hieras = HierasNetwork(space, ids, landmark_orders=orders, depth=depth)
    return space, chord, hieras


class TestCachePolicy:
    def test_defaults_enabled(self):
        policy = CachePolicy()
        assert policy.enabled and not policy.expires
        assert policy.eviction in EVICTION_MODES

    def test_capacity_zero_disables(self):
        assert not CachePolicy(capacity=0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            CachePolicy(capacity=-1)
        with pytest.raises(ValueError):
            CachePolicy(eviction="fifo")
        with pytest.raises(ValueError):
            CachePolicy(eviction="ttl-lru")  # needs ttl_ms > 0

    def test_ttl_policy(self):
        policy = CachePolicy(eviction="ttl-lru", ttl_ms=100.0)
        assert policy.expires


class TestNodeCache:
    def entry(self, owner, t=0.0):
        return CacheEntry(owner=owner, has_value=True, inserted_ms=t)

    def test_lru_eviction_order_is_insertion_order(self):
        cache = NodeCache(CachePolicy(capacity=3))
        for key in (10, 20, 30):
            assert cache.put(key, self.entry(key)) == 0
        assert cache.put(40, self.entry(40)) == 1  # evicts 10
        assert cache.keys() == [20, 30, 40]
        assert 10 not in cache

    def test_hit_refreshes_recency(self):
        cache = NodeCache(CachePolicy(capacity=3))
        for key in (1, 2, 3):
            cache.put(key, self.entry(key))
        entry, expired = cache.get(1, now_ms=0.0)
        assert entry is not None and not expired
        cache.put(4, self.entry(4))  # 2 is now the LRU, not 1
        assert cache.keys() == [3, 1, 4]

    def test_reinsert_refreshes_without_evicting(self):
        cache = NodeCache(CachePolicy(capacity=2))
        cache.put(1, self.entry(1))
        cache.put(2, self.entry(2))
        assert cache.put(1, self.entry(99)) == 0
        assert len(cache) == 2
        entry, _ = cache.get(1, now_ms=0.0)
        assert entry.owner == 99
        assert cache.keys()[-1] == 1  # most recently used

    def test_ttl_expiry(self):
        cache = NodeCache(CachePolicy(capacity=4, eviction="ttl-lru", ttl_ms=10.0))
        cache.put(1, self.entry(1, t=0.0))
        entry, expired = cache.get(1, now_ms=5.0)
        assert entry is not None and not expired
        entry, expired = cache.get(1, now_ms=20.0)
        assert entry is None and expired
        assert 1 not in cache  # expiry removed it

    def test_disabled_cache_stores_nothing(self):
        cache = NodeCache(CachePolicy(capacity=0))
        assert cache.put(1, self.entry(1)) == 0
        assert len(cache) == 0

    def test_evict(self):
        cache = NodeCache(CachePolicy(capacity=2))
        cache.put(1, self.entry(1))
        assert cache.evict(1) is True
        assert cache.evict(1) is False

    def test_deterministic_replay(self):
        """The same access sequence always yields the same cache state."""
        rng = np.random.default_rng(3)
        ops = [(int(rng.integers(0, 20)), bool(rng.integers(0, 2))) for _ in range(500)]

        def replay():
            cache = NodeCache(CachePolicy(capacity=8))
            for i, (key, is_put) in enumerate(ops):
                if is_put:
                    cache.put(key, CacheEntry(key, True, float(i)))
                else:
                    cache.get(key, float(i))
            return cache.keys()

        assert replay() == replay()


class TestCachedRouting:
    @pytest.fixture(params=["chord", "hieras"])
    def cached(self, request):
        space, chord, hieras = build_stacks()
        inner = chord if request.param == "chord" else hieras
        return space, inner, CachedNetwork(inner, CachePolicy(capacity=16))

    def test_miss_matches_inner_route(self, cached):
        space, inner, net = cached
        key = space.hash_key("some-file")
        result = net.route_cached(7, key)
        base = inner.route(7, key)
        assert result.path == base.path
        assert result.owner == base.owner == inner.owner_of(key)
        assert net.stats.misses == 1 and net.stats.hits == 0

    def test_repeat_lookup_served_locally(self, cached):
        space, inner, net = cached
        key = space.hash_key("hot")
        net.route_cached(7, key)
        repeat = net.route_cached(7, key)
        assert repeat.path == [7] and repeat.hops == 0
        assert repeat.owner == 7  # the source itself serves the value
        assert net.stats.value_hits == 1

    def test_shortcut_only_policy_jumps_to_owner(self, cached):
        space, inner, _ = cached
        net = CachedNetwork(inner, CachePolicy(capacity=16, cache_values=False))
        key = space.hash_key("hot")
        first = net.route_cached(7, key)
        second = net.route_cached(7, key)
        assert second.path == [7, first.owner]
        assert second.owner == first.owner
        assert net.stats.shortcut_hits == 1

    def test_path_population_spreads_the_answer(self, cached):
        """CFS-style: every node along a miss path learns the answer."""
        space, inner, net = cached
        key = space.hash_key("spread")
        result = net.route_cached(7, key)
        for node in result.path[:-1]:
            entry, _ = net.cache_of(node).get(key, 0.0)
            assert entry is not None and entry.owner == result.owner

    def test_populate_path_false_caches_only_at_source(self, cached):
        space, inner, _ = cached
        net = CachedNetwork(inner, CachePolicy(capacity=16, populate_path=False))
        key = space.hash_key("client-side")
        result = net.route_cached(7, key)
        assert key in net.cache_of(7)
        for node in result.path[1:-1]:
            assert key not in net.cache_of(node)

    def test_capacity_zero_is_transparent(self, cached):
        space, inner, _ = cached
        net = CachedNetwork(inner, CachePolicy(capacity=0))
        rng = np.random.default_rng(5)
        for _ in range(30):
            src = int(rng.integers(0, inner.n_peers))
            key = int(rng.integers(0, space.size))
            assert net.route_cached(src, key).path == inner.route(src, key).path
        assert net.stats.hits == 0 and net.stats.insertions == 0

    def test_hops_per_layer_shape(self, cached):
        space, inner, net = cached
        depth = int(getattr(inner, "depth", 1))
        key = space.hash_key("layers")
        for result in (net.route_cached(7, key), net.route_cached(7, key)):
            assert len(result.hops_per_layer) == depth
            assert sum(result.hops_per_layer) == result.hops

    def test_accounting_identity(self, cached):
        space, inner, net = cached
        rng = np.random.default_rng(6)
        keys = [space.hash_key(f"f{i}") for i in range(10)]
        for _ in range(200):
            net.route_cached(int(rng.integers(0, inner.n_peers)), keys[int(rng.integers(0, 10))])
        assert net.stats.lookups == 200
        assert net.stats.hits + net.stats.misses == net.stats.lookups
        assert net.stats.hits > 0
        load = net.load_summary()
        assert load["total_served"] == 200.0
        assert sum(net.served_counts().values()) == 200

    def test_route_delegates_to_route_cached(self, cached):
        space, inner, net = cached
        key = space.hash_key("delegate")
        net.route(3, key)
        assert net.route(3, key).hops == 0
        assert net.stats.lookups == 2

    def test_stale_owner_after_membership_change(self, cached):
        """A cached shortcut to a removed peer is evicted; routing recovers."""
        space, inner, _ = cached
        net = CachedNetwork(inner, CachePolicy(capacity=16, cache_values=False))
        key = space.hash_key("doomed-owner")
        owner = inner.owner_of(key)
        net.route_cached(7, key)
        inner.remove_peer(owner)
        try:
            result = net.route_cached(7, key)
            assert result.success
            new_owner = inner.owner_of(key)
            assert result.owner == new_owner != owner
            # The stale shortcut was spread along the whole first path;
            # every copy the recovery lookup meets gets evicted.
            assert net.stats.stale_evictions >= 1
            entry, _ = net.cache_of(7).get(key, net.now_ms)
            assert entry is not None and entry.owner == new_owner
        finally:
            inner.revive_peer(owner)


class TestCacheClockAndTtl:
    def test_clock_cannot_run_backwards(self):
        _, chord, _ = build_stacks()
        net = CachedNetwork(chord, CachePolicy())
        net.advance_to(10.0)
        with pytest.raises(ValueError):
            net.advance_to(5.0)

    def test_ttl_expires_cached_answers(self):
        space, chord, _ = build_stacks()
        net = CachedNetwork(
            chord, CachePolicy(capacity=16, eviction="ttl-lru", ttl_ms=50.0)
        )
        key = space.hash_key("aging")
        net.route_cached(7, key)
        net.advance_to(10.0)
        assert net.route_cached(7, key).hops == 0  # still fresh
        net.advance_to(100.0)
        expired = net.route_cached(7, key)
        assert expired.hops > 0  # aged out: full route again
        assert net.stats.expirations >= 1


class TestCachedLossy:
    def test_cached_but_crashed_owner_evicted_and_fallback_succeeds(self):
        """The acceptance case: a cached owner crashes; the next lookup
        detects it (failed contact), evicts the entry, pays the timeout,
        and still succeeds via failure-aware fallback routing."""
        rng = np.random.default_rng(1)
        space = IdSpace(16)
        ids = space.sample_unique_ids(200, rng)
        chord = ChordNetwork(space, ids, successor_list_r=16)
        net = CachedNetwork(chord, CachePolicy(capacity=16, cache_values=False))
        key = space.hash_key("hot-file")
        owner = chord.owner_of(key)
        plan = FaultPlan(seed=3).crash_peers(at_ms=10.0, peers=[owner])
        injector = FaultInjector(plan, 200)

        first = net.route_cached_lossy(5, key, injector=injector)
        assert first.success and first.owner == owner
        hit = net.route_cached_lossy(5, key, injector=injector)
        assert hit.path == [5, owner]  # shortcut while the owner lives

        injector.advance_to(20.0)  # the cached owner crashes
        fallback = net.route_cached_lossy(5, key, injector=injector)
        assert fallback.success
        assert fallback.owner != owner
        assert fallback.timeouts >= 1  # the failed contact was paid for
        assert net.stats.stale_evictions == 1
        # The successful fallback re-learns the live owner...
        entry, _ = net.cache_of(5).get(key, net.now_ms)
        assert entry is not None and entry.owner == fallback.owner
        # ...so the next lookup is a 1-hop shortcut again.
        healed = net.route_cached_lossy(5, key, injector=injector)
        assert healed.path == [5, fallback.owner]

    def test_local_value_hits_need_no_contact(self):
        """A cached value is served locally even when its owner is dead
        (the staleness tradeoff §9 documents)."""
        rng = np.random.default_rng(1)
        space = IdSpace(16)
        ids = space.sample_unique_ids(200, rng)
        chord = ChordNetwork(space, ids, successor_list_r=16)
        net = CachedNetwork(chord, CachePolicy(capacity=16))
        key = space.hash_key("hot-file")
        owner = chord.owner_of(key)
        plan = FaultPlan(seed=3).crash_peers(at_ms=10.0, peers=[owner])
        injector = FaultInjector(plan, 200)
        net.route_cached_lossy(5, key, injector=injector)
        injector.advance_to(20.0)
        served = net.route_cached_lossy(5, key, injector=injector)
        assert served.hops == 0 and served.timeouts == 0


class TestCacheObservability:
    def test_no_recorder_no_spans(self):
        space, chord, _ = build_stacks()
        net = CachedNetwork(chord, CachePolicy())
        assert net.metrics is None
        net.route_cached(3, space.hash_key("quiet"))

    def test_spans_carry_cache_annotations(self):
        space, chord, _ = build_stacks()
        net = CachedNetwork(chord, CachePolicy())
        sink = MemorySink()
        recorder = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
        net.enable_tracing(recorder)
        key = space.hash_key("traced")
        net.route_cached(3, key)
        net.route_cached(9, key)  # hits a cache somewhere along the way
        assert len(sink) == 2
        assert all(span.network == "cached-chord" for span in sink.spans)
        first, second = sink.spans
        assert all(h.cache == "" for h in first.hops)
        cache_hops = [h.cache for h in second.hops if h.cache]
        assert cache_hops in ([], ["value-hit"], ["shortcut"])
        reg = recorder.registry
        assert reg.counter("cache.misses").value == net.stats.misses
        assert (
            reg.counter("cache.value_hits").value
            + reg.counter("cache.shortcut_hits").value
            == net.stats.hits
        )
        # Annotated hops also land as per-label span counters.
        if cache_hops:
            assert reg.counter(f"cached-chord.cache.{cache_hops[0]}").value == 1

    def test_hop_record_round_trips_cache_field(self):
        from repro.metrics.spans import HopRecord

        hop = HopRecord(
            index=0, src=1, dst=2, layer=1, ring="global",
            latency_ms=3.5, cache="value-hit",
        )
        assert HopRecord.from_dict(hop.to_dict()) == hop
        # Pre-cache payloads (no "cache" key) still load.
        legacy = {k: v for k, v in hop.to_dict().items() if k != "cache"}
        assert HopRecord.from_dict(legacy).cache == ""


class TestCacheDeterminism:
    def test_replay_is_bit_identical(self):
        """Same trace, fresh caches → identical stats, loads and results."""
        space, chord, hieras = build_stacks()
        rng = np.random.default_rng(9)
        trace = [
            (int(rng.integers(0, 200)), space.hash_key(f"f{int(rng.integers(0, 30))}"))
            for _ in range(300)
        ]

        def run(inner):
            net = CachedNetwork(inner, CachePolicy(capacity=8))
            out = []
            for i, (src, key) in enumerate(trace):
                net.advance_to(float(i))
                r = net.route_cached(src, key)
                out.append((r.owner, tuple(r.path), r.latency_ms))
            return json.dumps(
                {
                    "results": out,
                    "stats": net.stats.as_dict(),
                    "served": net.served_counts(),
                    "load": net.load_summary(),
                },
                sort_keys=True,
            )

        for inner in (chord, hieras):
            assert run(inner) == run(inner)
