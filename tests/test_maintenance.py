"""Tests for the §3.4 cost model and failure handling."""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.core.maintenance import (
    fail_peers,
    maintenance_traffic_cost,
    measured_state_cost,
    state_cost_model,
)
from repro.util.ids import IdSpace


class TestStateCostModel:
    def test_chord_case_is_log(self):
        cost = state_cost_model(10_000, depth=1, successor_list_len=16)
        assert cost.finger_entries == pytest.approx(np.log2(10_000), abs=0.1)
        assert cost.successor_entries == 16
        assert cost.ring_table_entries == 0.0

    def test_depth_increases_state_sublinearly(self):
        d1 = state_cost_model(10_000, depth=1).total_entries
        d2 = state_cost_model(10_000, depth=2).total_entries
        d3 = state_cost_model(10_000, depth=3).total_entries
        assert d1 < d2 < d3
        assert d3 < 3 * d1 + 40

    def test_paper_claim_hundreds_of_bytes(self):
        """§3.4: multi-layer finger tables occupy 'only hundred or
        thousands of bytes'."""
        cost = state_cost_model(10_000, depth=3, successor_list_len=16)
        assert cost.total_bytes < 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            state_cost_model(0, 2)
        with pytest.raises(ValueError):
            state_cost_model(10, 0)


def build_hieras(n=150, depth=2, seed=1, latency=None):
    rng = np.random.default_rng(seed)
    space = IdSpace(16)
    ids = space.sample_unique_ids(n, rng)
    distances = rng.uniform(0, 300, size=(n, 4))
    orders = BinningScheme.default_for_depth(max(depth, 2)).orders(distances)
    return HierasNetwork(space, ids, landmark_orders=orders, depth=depth, latency=latency)


class TestMeasuredCost:
    def test_measured_close_to_model_shape(self):
        net = build_hieras(n=200, depth=2)
        measured = measured_state_cost(net, sample=32)
        assert measured.finger_entries > np.log2(200) - 2
        assert measured.total_bytes > 0

    def test_traffic_cost_low_layer_cheaper(self, small_networks):
        _, hieras = small_networks
        costs = maintenance_traffic_cost(hieras, sample=48)
        assert costs["layer2_mean_ping_ms"] < costs["layer1_mean_ping_ms"]


class TestFailPeers:
    def test_reports_and_removes(self):
        net = build_hieras(n=100)
        report = fail_peers(net, [3, 17, 42])
        assert report["failed"] == 3.0
        assert report["peers_remaining"] == 97.0
        assert net.n_peers == 97

    def test_failure_wave_is_incremental(self):
        # Scale regression: a membership wave used to re-derive every
        # layer's rings from scratch (one full O(N log N) rebuild per
        # wave).  Now the whole wave splices only the rings it touches:
        # no full rebuild at all, one incremental wave applied.
        net = build_hieras(n=100)
        builds_before = net.rebuild_count
        waves_before = net.incremental_waves
        fail_peers(net, [3, 17, 42, 55, 68])
        assert net.rebuild_count == builds_before
        assert net.incremental_waves == waves_before + 1
        assert net.n_peers == 95

    def test_routing_still_correct_after_failures(self):
        net = build_hieras(n=100)
        fail_peers(net, [5, 6, 7, 8])
        rng = np.random.default_rng(2)
        for _ in range(100):
            s = int(rng.integers(0, 100))
            if not net.is_alive(s):
                continue
            k = int(rng.integers(0, net.space.size))
            r = net.route(s, k)
            assert net.is_alive(r.owner)
            assert all(p not in (5, 6, 7, 8) for p in r.path)
