"""Tests for the Inet-style and BRITE-style generators."""

import numpy as np
import pytest

from repro.topology.brite import BriteParams, generate_brite
from repro.topology.inet import INET_MIN_NODES, InetParams, generate_inet
from repro.topology.latency import APSPLatencyModel
from repro.topology.placement import place_nodes


def small_inet(**kw):
    kw.setdefault("n_nodes", 400)
    kw.setdefault("enforce_min_nodes", False)
    return InetParams(**kw)


class TestInet:
    def test_enforces_paper_minimum(self):
        with pytest.raises(ValueError, match="3000"):
            InetParams(n_nodes=1000)
        assert InetParams(n_nodes=INET_MIN_NODES).n_nodes == INET_MIN_NODES

    def test_override_for_tests(self):
        assert small_inet().n_nodes == 400

    def test_connected(self):
        topo = generate_inet(small_inet(), seed=1)
        assert topo.is_connected()

    def test_deterministic(self):
        a = generate_inet(small_inet(), seed=2)
        b = generate_inet(small_inet(), seed=2)
        np.testing.assert_array_equal(a.edges, b.edges)

    def test_power_law_hubs_exist(self):
        topo = generate_inet(small_inet(n_nodes=800), seed=3)
        deg = topo.degree()
        # A power-law graph has hubs far above the median degree.
        assert deg.max() >= 8 * np.median(deg)
        assert np.median(deg) <= 3

    def test_delays_positive_integers(self):
        topo = generate_inet(small_inet(), seed=1)
        assert topo.delays.min() >= 1.0
        np.testing.assert_array_equal(topo.delays, np.round(topo.delays))

    def test_coords_present(self):
        topo = generate_inet(small_inet(), seed=1)
        assert topo.coords is not None and topo.coords.shape == (400, 2)

    def test_locality_makes_links_short(self):
        local = generate_inet(small_inet(locality_beta=0.05), seed=4)
        anywhere = generate_inet(small_inet(locality_beta=None), seed=4)
        assert local.delays.mean() < 0.6 * anywhere.delays.mean()

    def test_latency_has_geography(self):
        """Close pairs must be much cheaper than far ones, else the
        binning scheme has nothing to exploit (the fig3 divergence we
        debugged is exactly this regression)."""
        topo = generate_inet(small_inet(), seed=5)
        model = APSPLatencyModel(topo)
        rng = np.random.default_rng(0)
        us = rng.integers(0, 400, 4000)
        vs = rng.integers(0, 400, 4000)
        d = model.pairs(us, vs)
        geo = np.hypot(*(topo.coords[us] - topo.coords[vs]).T)
        near = d[geo < np.percentile(geo, 20)]
        far = d[geo > np.percentile(geo, 80)]
        assert near.mean() < 0.6 * far.mean()

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            small_inet(degree_exponent=1.0)


class TestBrite:
    def test_connected(self):
        topo = generate_brite(BriteParams(n_nodes=300), seed=1)
        assert topo.is_connected()

    def test_deterministic(self):
        a = generate_brite(BriteParams(n_nodes=300), seed=2)
        b = generate_brite(BriteParams(n_nodes=300), seed=2)
        np.testing.assert_array_equal(a.edges, b.edges)

    def test_edge_count_incremental_growth(self):
        p = BriteParams(n_nodes=300, links_per_node=2)
        topo = generate_brite(p, seed=1)
        # m links per arriving node, minus the seed core's shortfall.
        assert topo.n_edges >= 2 * (300 - 3)
        assert topo.n_edges <= 2 * 300

    def test_preferential_attachment_creates_hubs(self):
        topo = generate_brite(BriteParams(n_nodes=600, waxman_beta=None), seed=1)
        deg = topo.degree()
        assert deg.max() >= 5 * np.median(deg)

    def test_waxman_shortens_links(self):
        local = generate_brite(BriteParams(n_nodes=400, waxman_beta=0.05), seed=3)
        pure_ba = generate_brite(BriteParams(n_nodes=400, waxman_beta=None), seed=3)
        assert local.delays.mean() < pure_ba.delays.mean()

    def test_uniform_placement_option(self):
        topo = generate_brite(
            BriteParams(n_nodes=200, skewed_placement=False), seed=1
        )
        assert topo.is_connected()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BriteParams(n_nodes=4)
        with pytest.raises(ValueError):
            BriteParams(links_per_node=0)
        with pytest.raises(ValueError):
            BriteParams(waxman_beta=0.0)


class TestPlacement:
    def test_uniform_in_bounds(self, rng):
        coords = place_nodes(500, 100.0, rng)
        assert coords.shape == (500, 2)
        assert coords.min() >= 0 and coords.max() <= 100.0

    def test_hotspots_cluster(self, rng):
        coords = place_nodes(
            2000, 1000.0, rng, n_hotspots=4, hotspot_sigma_fraction=0.01
        )
        # Nearest-hotspot distances are tiny compared to the plane.
        from scipy.spatial import cKDTree

        tree = cKDTree(coords)
        d, _ = tree.query(coords, k=2)
        assert np.median(d[:, 1]) < 20.0

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            place_nodes(0, 100.0, rng)
        with pytest.raises(ValueError):
            place_nodes(10, 0.0, rng)
        with pytest.raises(ValueError):
            place_nodes(10, 100.0, rng, n_hotspots=0)
