"""Tests for repro.scale and the streamed routing aggregates.

Covers the scale package's three exports (transit-stub sizing, the
uncached scale build, the struct-of-arrays memory audit), the
``stream_batch_route`` aggregates (exact agreement with a direct
``batch_route`` call, chunk-size invariance of every integer statistic
and the owner checksum), the peak-RSS helper, and the shape plus
metrics-determinism of the ``BENCH_scale`` document at tiny N.
"""

import json

import numpy as np
import pytest

from repro.engine import batch_route, stream_batch_route
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace
from repro.experiments.scale_exp import SCHEMA, run_bench_scale, write_bench_scale
from repro.scale import build_scale_bundle, hot_state_bytes, scale_ts_params
from repro.topology.transit_stub import TransitStubParams
from repro.util.proc import peak_rss_mb


class TestScaleTsParams:
    def test_small_sizes_defer_to_for_size(self):
        for n in (320, 2000, 50_000):
            assert scale_ts_params(n) == TransitStubParams.for_size(n)

    def test_large_sizes_bound_stub_blocks(self):
        params = scale_ts_params(1_250_000)
        assert params.stub_domain_size <= 600  # ≈1 MB float32 blocks
        assert 0.8 <= params.n_routers / 1_250_000 <= 1.2
        block_bytes = params.stub_domain_size**2 * 4
        assert block_bytes < 2 * 1024 * 1024

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            scale_ts_params(8)


class TestBuildScaleBundle:
    def test_small_config_reproduces_standard_build(self):
        """Below every threshold the scale path is byte-for-byte the
        standard runner: same topology, ids, rings, latencies."""
        config = SimConfig(model="ts", n_peers=300, seed=9)
        std = build_bundle(config)
        scale = build_scale_bundle(config)
        assert np.array_equal(std.node_ids, scale.node_ids)
        assert np.array_equal(std.chord.ring.ids, scale.chord.ring.ids)
        assert np.array_equal(std.chord.ring.peers, scale.chord.ring.peers)
        assert np.array_equal(
            std.hieras.global_ring.ids, scale.hieras.global_ring.ids
        )
        for layer in range(2, std.hieras.depth + 1):
            assert sorted(std.hieras.rings_at_layer(layer)) == sorted(
                scale.hieras.rings_at_layer(layer)
            )
        rng = np.random.default_rng(0)
        us = rng.integers(0, 300, 200)
        vs = rng.integers(0, 300, 200)
        np.testing.assert_array_equal(
            std.peer_latency.pairs(us, vs), scale.peer_latency.pairs(us, vs)
        )

    def test_zero_threshold_builds_streaming_and_agrees(self):
        config = SimConfig(model="ts", n_peers=200, seed=4)
        eager = build_bundle(config)
        streaming = build_scale_bundle(config, streaming_threshold_bytes=0)
        trace = make_trace(eager, 500)
        a = batch_route(eager.hieras, trace.sources, trace.keys)
        b = batch_route(streaming.hieras, trace.sources, trace.keys)
        assert np.array_equal(a.owner, b.owner)
        assert np.array_equal(a.latency_ms, b.latency_ms)

    def test_hot_state_bytes_audit(self):
        bundle = build_scale_bundle(SimConfig(model="ts", n_peers=256, seed=3))
        audit = hot_state_bytes(bundle)
        assert audit["chord_bytes"] > 0
        assert audit["hieras_bytes"] > audit["chord_bytes"]
        # interning: pool entries are per *ring*, far fewer than peers
        assert audit["hieras_ring_name_pool_entries"] < 256


class TestStreamBatchRoute:
    @pytest.fixture(scope="class")
    def bundle_and_trace(self):
        bundle = build_bundle(SimConfig(model="ts", n_peers=400, seed=6))
        return bundle, make_trace(bundle, 3000)

    def test_matches_direct_batch_route(self, bundle_and_trace):
        bundle, trace = bundle_and_trace
        for net in (bundle.chord, bundle.hieras):
            direct = batch_route(net, trace.sources, trace.keys)
            stats = stream_batch_route(net, trace.sources, trace.keys, chunk_size=256)
            assert stats.lookups == 3000
            assert stats.hop_sum == int(direct.hops.sum())
            assert stats.hop_max == int(direct.hops.max())
            assert stats.latency_sum_ms == pytest.approx(
                float(direct.latency_ms.sum()), rel=1e-9
            )

    def test_integer_stats_are_chunk_invariant(self, bundle_and_trace):
        bundle, trace = bundle_and_trace
        runs = [
            stream_batch_route(
                bundle.hieras, trace.sources, trace.keys, chunk_size=size
            )
            for size in (64, 1000, 3000, 10_000)
        ]
        first = runs[0]
        for other in runs[1:]:
            assert other.hop_sum == first.hop_sum
            assert other.hop_max == first.hop_max
            assert other.owner_checksum == first.owner_checksum
            np.testing.assert_array_equal(other.hop_histogram, first.hop_histogram)
            np.testing.assert_array_equal(
                other.per_layer_hop_sum, first.per_layer_hop_sum
            )

    def test_checksum_is_order_sensitive(self, bundle_and_trace):
        """The checksum weighs lanes by global index: permuted owners
        must not collide (a plain sum would)."""
        bundle, trace = bundle_and_trace
        fwd = stream_batch_route(bundle.chord, trace.sources, trace.keys)
        rev = stream_batch_route(
            bundle.chord, trace.sources[::-1].copy(), trace.keys[::-1].copy()
        )
        assert fwd.owner_checksum != rev.owner_checksum

    def test_as_dict_shape(self, bundle_and_trace):
        bundle, trace = bundle_and_trace
        stats = stream_batch_route(bundle.hieras, trace.sources, trace.keys)
        doc = stats.as_dict()
        assert doc["lookups"] == 3000
        assert doc["mean_hops"] == pytest.approx(stats.hop_sum / 3000)
        assert isinstance(doc["owner_checksum"], int)
        assert sum(doc["hop_histogram"]) == 3000


class TestPeakRss:
    def test_positive_and_monotone(self):
        first = peak_rss_mb()
        assert first > 0.0
        ballast = np.ones(4 << 20, dtype=np.uint8)  # +4 MiB
        assert peak_rss_mb() >= first
        del ballast


class TestBenchScaleDocument:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_bench_scale(sizes=(192, 320))

    def test_shape_and_contracts(self, doc):
        assert doc["schema"] == SCHEMA
        cells = doc["metrics"]["cells"]
        assert set(cells) == {"n192", "n320"}
        for cell in cells.values():
            assert cell["stacks_agree_owners"] is True
            mem = cell["membership"]
            assert mem["full_rebuilds_during_waves_chord"] == 0
            assert mem["full_rebuilds_during_waves_hieras"] == 0
            assert mem["incremental_matches_rebuild"] is True
            assert cell["memory"]["hieras_bytes"] > 0
        assert cells["n192"]["engines_agree"] is True
        for n in (192, 320):
            assert f"build_n{n}" in doc["phases"]
            assert doc["phases"][f"hieras_lookup_n{n}"]["lookups_per_s"] > 0

    def test_metrics_deterministic(self, doc):
        again = run_bench_scale(sizes=(192, 320))
        assert json.dumps(doc["metrics"], sort_keys=True) == json.dumps(
            again["metrics"], sort_keys=True
        )

    def test_write_round_trips(self, doc, tmp_path):
        path = write_bench_scale(doc, tmp_path / "BENCH_scale.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"] == json.loads(
            json.dumps(doc["metrics"], sort_keys=True)
        )
