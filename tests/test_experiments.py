"""Tests for the experiment harness: config, runner, registry, CLI."""

import numpy as np
import pytest

from repro.experiments.config import DEFAULT_REQUESTS, FULL_REQUESTS, SimConfig, is_full_scale
from repro.experiments.figures import EXPERIMENTS, get_experiment
from repro.experiments.runner import build_bundle, clear_cache, make_trace, run_pair


class TestConfig:
    def test_defaults_valid(self):
        cfg = SimConfig()
        assert cfg.model == "ts"
        assert cfg.n_routers >= cfg.n_peers

    def test_with_(self):
        cfg = SimConfig().with_(n_peers=500, depth=3)
        assert cfg.n_peers == 500 and cfg.depth == 3

    def test_topology_key_ignores_routing_settings(self):
        a = SimConfig(depth=2).topology_key()
        b = SimConfig(depth=3).topology_key()
        assert a == b
        c = SimConfig(n_landmarks=8).topology_key()
        assert c != a

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(model="grid")
        with pytest.raises(ValueError):
            SimConfig(depth=1)
        with pytest.raises(ValueError):
            SimConfig(landmark_strategy="bogus")

    def test_auto_strategy_resolution(self):
        assert SimConfig(model="ts").resolved_landmark_strategy == "spread"
        assert SimConfig(model="inet", n_peers=3000).resolved_landmark_strategy == "random"
        assert SimConfig(model="ts", landmark_strategy="random").resolved_landmark_strategy == "random"

    def test_scale_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_scale()
        assert is_full_scale(True)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_scale()
        assert not is_full_scale(False)
        assert DEFAULT_REQUESTS < FULL_REQUESTS


class TestRunner:
    @pytest.fixture(scope="class")
    def bundle(self):
        clear_cache()
        return build_bundle(SimConfig(n_peers=200, seed=1))

    def test_bundle_wiring(self, bundle):
        assert bundle.chord.n_peers == 200
        assert bundle.hieras.n_peers == 200
        assert bundle.attachment.n_landmarks == 4
        assert bundle.orders.n_nodes == 200

    def test_substrate_cached_across_depths(self, bundle):
        other = build_bundle(SimConfig(n_peers=200, seed=1, depth=3))
        np.testing.assert_array_equal(other.node_ids, bundle.node_ids)
        assert other.topology is bundle.topology  # cache hit

    def test_trace_deterministic(self, bundle):
        a = make_trace(bundle, 50)
        b = make_trace(bundle, 50)
        np.testing.assert_array_equal(a.keys, b.keys)

    def test_run_pair_owner_agreement(self, bundle):
        chord, hieras = run_pair(bundle, 300)
        assert len(chord) == len(hieras) == 300
        # Same owners means same keys resolved identically.
        trace = make_trace(bundle, 10)
        for s, k in trace:
            assert bundle.chord.route(s, k).owner == bundle.hieras.route(s, k).owner

    def test_hieras_latency_wins_on_ts(self, bundle):
        chord, hieras = run_pair(bundle, 500)
        assert hieras.mean_latency_ms < chord.mean_latency_ms

    def test_inet_size_floor_enforced(self):
        with pytest.raises(ValueError, match="3000"):
            build_bundle(SimConfig(model="inet", n_peers=500))


class TestRegistry:
    PAPER_ARTIFACTS = [
        "table1", "table2",
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    ]

    def test_every_paper_artifact_registered(self):
        for artifact in self.PAPER_ARTIFACTS:
            assert artifact in EXPERIMENTS

    def test_ablations_registered(self):
        for ablation in (
            "ablation_binning",
            "ablation_succlist",
            "ablation_can",
            "ablation_pastry",
            "ablation_noise",
            "ablation_landmark_failure",
            "cost_analysis",
            "churn",
        ):
            assert ablation in EXPERIMENTS

    def test_get_experiment_error_lists_ids(self):
        with pytest.raises(ValueError, match="table1"):
            get_experiment("nope")

    def test_metadata_complete(self):
        for exp in EXPERIMENTS.values():
            assert exp.title and exp.paper_claim
            assert callable(exp.run)


class TestExperimentsSmoke:
    """Tiny-scale end-to-end runs of the cheap experiments."""

    def test_table1_matches_paper_exactly(self):
        result = get_experiment("table1").run(False, 42)
        assert "[ok]" in result.text and "[DIVERGES]" not in result.text
        assert result.data["orders"] == result.data["expected"]

    def test_table2_structure(self):
        result = get_experiment("table2").run(False, 42)
        assert "[DIVERGES]" not in result.text
        assert len(result.data["rows"]) == 8


class TestCli:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table1" in out

    def test_run_table1(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "1012" in out

    def test_unknown_experiment(self):
        from repro.experiments.cli import main

        with pytest.raises(ValueError):
            main(["run", "bogus"])


class TestCliReportAndSweep:
    def test_report_writes_markdown(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import cli, figures
        from repro.experiments.figures import Experiment, ExperimentResult

        tiny = Experiment(
            "tiny", "Tiny", "claim",
            lambda full, seed: ExperimentResult("tiny", "Tiny", "  [ok] fine"),
        )
        monkeypatch.setattr(figures, "EXPERIMENTS", {"tiny": tiny})
        monkeypatch.setattr(cli, "EXPERIMENTS", {"tiny": tiny})
        out = tmp_path / "report.md"
        assert cli.main(["report", "--out", str(out)]) == 0
        text = out.read_text()
        assert "# HIERAS reproduction report" in text
        assert "[ok] fine" in text

    def test_report_flags_divergence(self, tmp_path, monkeypatch):
        from repro.experiments import cli, figures
        from repro.experiments.figures import Experiment, ExperimentResult

        bad = Experiment(
            "bad", "Bad", "claim",
            lambda full, seed: ExperimentResult("bad", "Bad", "  [DIVERGES] nope"),
        )
        monkeypatch.setattr(cli, "EXPERIMENTS", {"bad": bad})
        out = tmp_path / "report.md"
        assert cli.main(["report", "--out", str(out)]) == 1

    def test_sweep_command_csv(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "s.csv"
        code = main([
            "sweep", "--models", "ts", "--sizes", "200", "--landmarks", "4",
            "--depths", "2", "--seeds", "1", "--requests", "200",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert "latency_ratio_pct" in header

    def test_sweep_no_valid_cells(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "sweep", "--models", "inet", "--sizes", "200", "--requests", "100",
        ])
        assert code == 1
