"""Tests for the serving layer (``repro.serve``)."""

import numpy as np
import pytest

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle
from repro.replication import ReplicatedStore, ReplicationPolicy
from repro.serve import Completion, DHTService, Request, ServiceConfig

N_PEERS = 120


@pytest.fixture(scope="module")
def bundle():
    return build_bundle(
        SimConfig(model="ts", n_peers=N_PEERS, n_landmarks=4, depth=2, seed=42)
    )


def make_store(net):
    return ReplicatedStore(net, ReplicationPolicy(replicas=2, consistency="quorum"))


def gets(times, source=1, name="k"):
    return [Request(op="get", at_ms=float(t), source=source, name=name) for t in times]


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Request(op="scan", at_ms=0.0, source=1, name="k")

    def test_get_needs_source_and_name(self):
        with pytest.raises(ValueError):
            Request(op="get", at_ms=0.0, name="k")
        with pytest.raises(ValueError):
            Request(op="get", at_ms=0.0, source=1)

    def test_membership_needs_peers(self):
        with pytest.raises(ValueError):
            Request(op="leave", at_ms=0.0)

    def test_completion_total_is_phase_sum(self):
        c = Completion(
            seq=0, op="get", outcome="ok", arrival_ms=0.0,
            queue_wait_ms=1.0, service_ms=2.0, route_ms=3.0, fanout_ms=4.0,
        )
        assert c.total_ms == 10.0
        assert c.served


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ServiceConfig(deadline_ms=0.0)

    def test_capacity_model(self):
        cfg = ServiceConfig(workers=4, max_batch=32, dispatch_overhead_ms=5.0,
                            per_lookup_ms=0.5)
        assert cfg.lookup_capacity_per_s > cfg.scalar_lookup_capacity_per_s
        assert cfg.scalar_lookup_capacity_per_s == pytest.approx(4000.0 / 5.5)


class TestEventLoop:
    def test_requests_must_be_sorted(self, bundle):
        svc = DHTService(bundle.chord)
        with pytest.raises(ValueError):
            svc.run(gets([5.0, 1.0]))

    def test_serves_all_when_underloaded(self, bundle):
        svc = DHTService(bundle.chord)
        result = svc.run(gets(range(0, 1000, 100)))
        assert result.served == 10
        assert result.counts == {"ok": 10}
        assert [c.seq for c in result.completions] == list(range(10))

    def test_queue_wait_zero_when_idle(self, bundle):
        result = DHTService(bundle.chord).run(gets([0.0, 1000.0]))
        assert all(c.queue_wait_ms == 0.0 for c in result.completions)

    def test_makespan_excludes_network_time(self, bundle):
        """Throughput denominator is worker-idle time, not response time."""
        cfg = ServiceConfig(workers=1)
        result = DHTService(bundle.chord, config=cfg).run(gets([0.0]))
        c = result.completions[0]
        assert c.route_ms > 0.0
        assert result.makespan_ms == pytest.approx(c.service_ms)
        assert c.finish_ms == pytest.approx(c.service_ms + c.route_ms)

    def test_batch_coalescing_amortizes_overhead(self, bundle):
        """Gets queued behind a busy worker ride one coalesced batch.

        The loop is work-conserving (no artificial batching delay), so
        the first arrival dispatches alone; the seven that arrive while
        the worker is busy coalesce into a single batch-route call.
        """
        cfg = ServiceConfig(workers=1, max_batch=8)
        burst = DHTService(bundle.chord, config=cfg).run(gets([0.0] * 8))
        assert [c.batch_size for c in burst.completions] == [1] + [7] * 7
        reg = burst.registry
        assert reg.counters["serve.batches"].value == 2
        assert reg.counters["serve.batched_lookups"].value == 8

    def test_scalar_config_never_batches(self, bundle):
        cfg = ServiceConfig(workers=1, max_batch=1)
        result = DHTService(bundle.chord, config=cfg).run(gets([0.0] * 5))
        assert all(c.batch_size == 1 for c in result.completions)
        assert result.registry.counters["serve.batches"].value == 5

    def test_batched_matches_scalar_owners(self, bundle):
        """Coalescing changes scheduling, never routing answers."""
        reqs = [
            Request(op="get", at_ms=0.0, source=i, name=f"k{i % 7}")
            for i in range(16)
        ]
        batched = DHTService(bundle.hieras, config=ServiceConfig(max_batch=16)).run(list(reqs))
        scalar = DHTService(bundle.hieras, config=ServiceConfig(max_batch=1)).run(list(reqs))
        assert [c.owner for c in batched.completions] == [c.owner for c in scalar.completions]
        assert [c.route_ms for c in batched.completions] == [
            c.route_ms for c in scalar.completions
        ]

    def test_fifo_across_ops(self, bundle):
        """A put ahead of gets dispatches first; gets behind it coalesce."""
        reqs = [
            Request(op="put", at_ms=0.0, source=1, name="w", value="v"),
            Request(op="get", at_ms=0.0, source=2, name="a"),
            Request(op="get", at_ms=0.0, source=3, name="b"),
        ]
        cfg = ServiceConfig(workers=1, max_batch=4)
        result = DHTService(bundle.chord, config=cfg).run(reqs)
        put, get_a, get_b = result.completions
        assert put.dispatch_ms <= get_a.dispatch_ms
        assert get_a.batch_size == 2 and get_b.batch_size == 2


class TestAdmissionControl:
    def test_rejects_beyond_queue_limit(self, bundle):
        cfg = ServiceConfig(workers=1, queue_limit=2, max_batch=1)
        result = DHTService(bundle.chord, config=cfg).run(gets([0.0] * 10))
        assert result.rejected > 0
        assert result.served + result.rejected == 10
        assert result.max_queue_depth <= 2
        rejected = [c for c in result.completions if c.outcome == "rejected"]
        assert all(c.total_ms == 0.0 for c in rejected)

    def test_unbounded_queue_never_rejects(self, bundle):
        result = DHTService(bundle.chord, config=ServiceConfig(workers=1)).run(
            gets([0.0] * 50)
        )
        assert result.rejected == 0 and result.served == 50

    def test_deadline_sheds_stale_requests(self, bundle):
        """With one slow worker, queued requests age past their budget."""
        cfg = ServiceConfig(
            workers=1, max_batch=1, deadline_ms=6.0, dispatch_overhead_ms=10.0
        )
        result = DHTService(bundle.chord, config=cfg).run(gets([0.0] * 6))
        shed = [c for c in result.completions if c.outcome == "deadline"]
        assert shed, "expected deadline shedding"
        assert all(c.queue_wait_ms > 6.0 for c in shed)
        assert all(c.route_ms == 0.0 for c in shed)
        assert result.counts["deadline"] == len(shed)

    def test_metrics_account_every_arrival(self, bundle):
        cfg = ServiceConfig(workers=1, queue_limit=3, deadline_ms=8.0)
        result = DHTService(bundle.chord, config=cfg).run(gets([0.0] * 20))
        reg = result.registry
        assert reg.counters["serve.arrivals"].value == 20
        total = sum(result.counts.values())
        assert total == 20


class TestStoreIntegration:
    def test_put_then_get_returns_value(self, bundle):
        store = make_store(bundle.hieras)
        reqs = [
            Request(op="put", at_ms=0.0, source=3, name="alpha", value="v1"),
            Request(op="get", at_ms=100.0, source=7, name="alpha"),
        ]
        result = DHTService(bundle.hieras, store=store).run(reqs)
        put, get = result.completions
        assert put.outcome == "ok" and put.fanout_ms > 0.0
        assert get.outcome == "ok" and get.value == "v1"

    def test_seeded_catalog_readable(self, bundle):
        store = make_store(bundle.chord)
        store.seed_key("hot", "v0")
        result = DHTService(bundle.chord, store=store).run(
            [Request(op="get", at_ms=0.0, source=5, name="hot")]
        )
        assert result.completions[0].value == "v0"

    def test_read_at_missing_key_is_none(self, bundle):
        store = make_store(bundle.chord)
        assert store.read_at(0, "nope") is None

    def test_dead_source_fails_cleanly(self, bundle):
        net = bundle.chord
        net.remove_peers([9])
        try:
            result = DHTService(net).run(
                [
                    Request(op="get", at_ms=0.0, source=9, name="k"),
                    Request(op="put", at_ms=0.0, source=9, name="k", value="v"),
                    Request(op="get", at_ms=0.0, source=10, name="k"),
                ]
            )
        finally:
            net.revive_peers([9])
        dead_get, dead_put, live_get = result.completions
        assert dead_get.outcome == "failed"
        assert dead_put.outcome == "failed"
        assert live_get.outcome == "ok"


class TestMembership:
    def test_leave_then_join_restores_liveness(self, bundle):
        net = bundle.hieras
        before = int(net.n_peers)
        wave = (20, 21, 22)
        reqs = [
            Request(op="leave", at_ms=0.0, peers=wave),
            Request(op="join", at_ms=10.0, peers=wave),
        ]
        result = DHTService(net).run(reqs)
        assert int(net.n_peers) == before
        leave, join = result.completions
        assert leave.batch_size == 3 and join.batch_size == 3
        assert result.registry.counters["serve.leave.peers"].value == 3
        assert result.registry.counters["serve.join.peers"].value == 3

    def test_leave_wave_never_empties_overlay(self):
        small = build_bundle(
            SimConfig(model="ts", n_peers=8, n_landmarks=4, depth=2, seed=3)
        )
        net = small.chord
        everyone = tuple(range(8))
        result = DHTService(net).run([Request(op="leave", at_ms=0.0, peers=everyone)])
        assert int(net.n_peers) >= 1
        assert result.completions[0].batch_size < 8

    def test_join_of_alive_peers_is_noop(self, bundle):
        net = bundle.chord
        result = DHTService(net).run([Request(op="join", at_ms=0.0, peers=(1, 2))])
        c = result.completions[0]
        assert c.batch_size == 0 and c.service_ms == 0.0


class TestDeterminism:
    def test_same_inputs_same_completions(self, bundle):
        reqs = [
            Request(op="get", at_ms=float(i), source=i % N_PEERS, name=f"k{i % 5}")
            for i in range(40)
        ]
        a = DHTService(bundle.chord).run(list(reqs))
        b = DHTService(bundle.chord).run(list(reqs))
        assert a.completions == b.completions
        assert a.registry.snapshot() == b.registry.snapshot()
        assert a.makespan_ms == b.makespan_ms

    def test_throughput_property(self, bundle):
        result = DHTService(bundle.chord).run(gets(np.arange(20.0)))
        assert result.throughput_per_s == pytest.approx(
            1000.0 * result.served / result.makespan_ms
        )
