"""Tests for the cache-effect experiment pipeline (``BENCH_cache.json``).

Small-scale runs of :func:`repro.experiments.cache_exp.run_bench_cache`:
document shape, paired-baseline reductions, churn/staleness cells, and
byte-identical ``metrics`` across runs (the determinism gate the full
benchmark is held to).
"""

import json

from repro.cache import CachePolicy
from repro.experiments.cache_exp import (
    HEADLINE_CAPACITY,
    HEADLINE_EXPONENT,
    SCHEMA,
    make_zipf_trace,
    run_bench_cache,
    run_cache_cell,
    write_bench_cache,
)
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle

SMALL = dict(
    seed=7,
    n_peers=200,
    n_requests=800,
    catalog_size=300,
    capacities=(HEADLINE_CAPACITY,),
    exponents=(HEADLINE_EXPONENT,),
    churn_fraction=0.1,
)


class TestRunCacheCell:
    def test_cell_accounting(self):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=150, n_landmarks=4, depth=2, seed=3)
        )
        trace = make_zipf_trace(
            bundle, 400, catalog_size=100, zipf_exponent=1.0
        )
        cell = run_cache_cell(
            bundle, trace, stack="chord", policy=CachePolicy(capacity=32)
        )
        assert cell["attempted"] == 400.0
        assert cell["success_rate"] == 1.0
        assert cell["cache_lookups"] == 400.0
        assert cell["cache_hits"] + cell["cache_misses"] == 400.0
        assert 0.0 < cell["cache_hit_rate"] < 1.0
        assert cell["load_total_served"] == 400.0

    def test_uncached_baseline_has_no_cache_activity(self):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=150, n_landmarks=4, depth=2, seed=3)
        )
        trace = make_zipf_trace(
            bundle, 300, catalog_size=100, zipf_exponent=1.0
        )
        base = run_cache_cell(
            bundle, trace, stack="hieras", policy=CachePolicy(capacity=0)
        )
        assert base["cache_hits"] == 0.0
        assert base["cache_insertions"] == 0.0
        assert base["mean_hops"] > 0.0


class TestRunBenchCache:
    def setup_method(self):
        self.doc = run_bench_cache(**SMALL)

    def test_document_shape(self):
        doc = self.doc
        assert doc["schema"] == SCHEMA
        assert set(doc) == {"schema", "config", "phases", "metrics"}
        assert doc["config"]["n_peers"] == 200
        metrics = doc["metrics"]
        assert set(metrics) == {"cells", "headline"}
        # 1 baseline + 1 cached + 3 churn cells, per stack.
        assert len(metrics["cells"]) == 10
        assert {c["stack"] for c in metrics["cells"]} == {"chord", "hieras"}
        assert set(metrics["headline"]) == {"chord", "hieras"}

    def test_cached_cells_reduce_hops_and_latency(self):
        for cell in self.doc["metrics"]["cells"]:
            if cell["churn_fraction"] == 0.0 and cell["capacity"] > 0:
                assert cell["hop_reduction_percent"] > 0.0
                assert cell["latency_reduction_percent"] > 0.0
                assert cell["cache_hit_rate"] > 0.0

    def test_headline_spreads_owner_load(self):
        for stack in ("chord", "hieras"):
            head = self.doc["metrics"]["headline"][stack]
            assert head["cached_concentration"] < head["uncached_concentration"]
            assert head["cached_max_served"] < head["uncached_max_served"]

    def test_churn_cells_detect_staleness(self):
        churn = [
            c for c in self.doc["metrics"]["cells"]
            if c["churn_fraction"] > 0.0 and c["capacity"] > 0
        ]
        assert len(churn) == 4  # (lru + ttl-lru) x 2 stacks
        assert all(not c["cache_values"] for c in churn)  # shortcut-only
        assert all(c["success_rate"] > 0.95 for c in churn)
        assert sum(c["cache_stale_evictions"] for c in churn) > 0
        ttl = [c for c in churn if c["eviction"] == "ttl-lru"]
        assert len(ttl) == 2
        assert sum(c["cache_expirations"] for c in ttl) > 0

    def test_metrics_block_is_deterministic(self):
        again = run_bench_cache(**SMALL)
        assert json.dumps(self.doc["metrics"], sort_keys=True) == json.dumps(
            again["metrics"], sort_keys=True
        )
        # Wall-clock phases exist but stay out of the deterministic block.
        assert set(self.doc["phases"]) == set(again["phases"])

    def test_write_bench_cache(self, tmp_path):
        out = write_bench_cache(self.doc, tmp_path / "BENCH_cache.json")
        loaded = json.loads(out.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"] == json.loads(
            json.dumps(self.doc["metrics"])
        )


class TestExperimentRegistration:
    def test_cache_effect_registered(self):
        from repro.experiments.figures import EXPERIMENTS

        exp = EXPERIMENTS["cache_effect"]
        assert "cach" in exp.title.lower()
        assert "20%" in exp.paper_claim or ">=20" in exp.paper_claim

    def test_cli_lists_cache_bench(self):
        from repro.experiments import cli

        assert hasattr(cli, "_cmd_cache_bench")
