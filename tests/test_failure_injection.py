"""Failure-injection tests: message loss and topology redundancy edges."""

import numpy as np
import pytest

from repro.dht.base import ZeroLatency
from repro.dht.chord_protocol import GLOBAL_RING, ChordProtocolNode
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.topology.latency import APSPLatencyModel, TransitStubLatencyModel, latency_model_for
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.util.ids import IdSpace


class TestMessageLoss:
    def test_loss_rate_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimNetwork(sim, ZeroLatency(), loss_rate=1.0)
        with pytest.raises(ValueError):
            SimNetwork(sim, ZeroLatency(), loss_rate=-0.1)

    def test_losses_counted(self):
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency(), loss_rate=0.5, loss_seed=1)

        class Sink(ChordProtocolNode):
            pass

        space = IdSpace(8)
        a = Sink(0, 1, space, sim, net)
        Sink(1, 2, space, sim, net)  # registered receiver
        for _ in range(200):
            a.send(1, "noop")
        sim.run()
        assert 40 < net.messages_lost < 160
        assert net.messages_sent == 200

    def test_local_messages_never_lost(self):
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency(), loss_rate=0.9, loss_seed=2)
        space = IdSpace(8)
        node = ChordProtocolNode(0, 1, space, sim, net)
        received = []
        node.handle_extra = lambda msg: received.append(msg)  # type: ignore[assignment]
        for _ in range(50):
            node.send(0, "self-note")
        sim.run()
        assert len(received) == 50

    def test_chord_converges_under_loss(self):
        """5% random message loss: stabilization must still converge
        the ring (retries and periodic timers absorb the losses)."""
        space = IdSpace(16)
        rng = np.random.default_rng(4)
        n = 16
        ids = space.sample_unique_ids(n, rng)
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency(), loss_rate=0.05, loss_seed=3)
        nodes = [ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)]
        nodes[0].create_ring(GLOBAL_RING)
        t = 0.0
        for p in range(1, n):
            t += 400.0
            sim.schedule_at(t, nodes[p].join_ring, GLOBAL_RING, 0)
        sim.run(until=t + 90_000, max_events=8_000_000)
        order = np.argsort(ids)
        for i, p in enumerate(order):
            expect = int(order[(i + 1) % n])
            succ = nodes[int(p)].ring_state().successor
            assert succ is not None and succ[0] == expect
        assert net.messages_lost > 0


class TestTopologyRedundancy:
    def test_extra_edges_marked(self):
        params = TransitStubParams.for_size(320, extra_uplink_prob=0.5)
        assert params.has_shortcuts
        assert not TransitStubParams.for_size(320).has_shortcuts

    def test_extra_uplinks_added(self):
        params = TransitStubParams.for_size(320, extra_uplink_prob=1.0)
        plain = TransitStubParams.for_size(320)
        topo = generate_transit_stub(params, seed=5)
        base = generate_transit_stub(plain, seed=5)
        assert topo.n_edges == base.n_edges + topo.n_stub_domains
        assert topo.is_connected()

    def test_stub_stub_edges_added(self):
        params = TransitStubParams.for_size(320, stub_stub_edge_prob=1.0)
        plain = TransitStubParams.for_size(320)
        topo = generate_transit_stub(params, seed=5)
        base = generate_transit_stub(plain, seed=5)
        assert topo.n_edges == base.n_edges + topo.n_stub_domains
        assert topo.is_connected()

    def test_model_selection_falls_back_to_apsp(self):
        params = TransitStubParams.for_size(320, extra_uplink_prob=0.5)
        topo = generate_transit_stub(params, seed=6)
        assert isinstance(latency_model_for(topo), APSPLatencyModel)
        plain = generate_transit_stub(TransitStubParams.for_size(320), seed=6)
        assert isinstance(latency_model_for(plain), TransitStubLatencyModel)

    def test_apsp_on_redundant_topology_matches_dijkstra(self, rng):
        params = TransitStubParams.for_size(320, extra_uplink_prob=0.6, stub_stub_edge_prob=0.3)
        topo = generate_transit_stub(params, seed=7)
        model = latency_model_for(topo)
        sources = rng.integers(0, topo.n_routers, 3)
        ground = topo.shortest_delays(sources)
        for i, s in enumerate(sources):
            targets = rng.integers(0, topo.n_routers, 100)
            np.testing.assert_allclose(
                model.pairs(np.full(100, s), targets), np.round(ground[i][targets])
            )

    def test_shortcuts_reduce_distances(self, rng):
        plain = generate_transit_stub(TransitStubParams.for_size(640), seed=8)
        redundant = generate_transit_stub(
            TransitStubParams.for_size(640, stub_stub_edge_prob=0.8), seed=8
        )
        pm = latency_model_for(plain)
        rm = latency_model_for(redundant)
        us = rng.integers(0, plain.n_routers, 3000)
        vs = rng.integers(0, plain.n_routers, 3000)
        assert rm.pairs(us, vs).mean() < pm.pairs(us, vs).mean()
