"""Tests for the durability experiment (``repro.experiments.durability``)."""

import json

import pytest

from repro.experiments.config import SimConfig
from repro.experiments.durability import (
    SCHEMA,
    run_bench_durability,
    run_durability_cell,
    write_bench_durability,
)
from repro.experiments.runner import build_bundle
from repro.replication import ReplicationPolicy

# Tiny parameters: every test below shares one cached bundle.
N_PEERS = 120
N_KEYS = 24


@pytest.fixture(scope="module")
def bundle():
    return build_bundle(
        SimConfig(model="ts", n_peers=N_PEERS, n_landmarks=4, depth=2, seed=42)
    )


def run_cell(bundle, **overrides):
    kwargs = dict(
        stack="chord",
        policy=ReplicationPolicy(replicas=2, consistency="quorum"),
        churn_fraction=0.3,
        n_keys=N_KEYS,
        seed=42,
    )
    kwargs.update(overrides)
    return run_durability_cell(bundle, **kwargs)


class TestCell:
    def test_cell_is_deterministic(self, bundle):
        assert run_cell(bundle) == run_cell(bundle)

    def test_cell_counts_are_consistent(self, bundle):
        cell = run_cell(bundle)
        # publish + half updated + half new keys
        assert cell["puts"] == N_KEYS + 2 * (N_KEYS // 2)
        assert cell["reads"] == 2 * (N_KEYS + N_KEYS // 2)
        assert cell["keys"] == N_KEYS + N_KEYS // 2
        assert 0.0 <= cell["loss_probability"] <= 1.0
        assert cell["crashed_final"] > 0

    def test_replication_beats_bare_storage(self, bundle):
        bare = run_cell(bundle, policy=ReplicationPolicy(replicas=0))
        replicated = run_cell(bundle)
        assert bare["loss_probability"] > replicated["loss_probability"]

    def test_chain_aborts_only_in_chain_mode(self, bundle):
        chain = run_cell(
            bundle, policy=ReplicationPolicy(replicas=2, consistency="chain")
        )
        quorum = run_cell(bundle)
        assert chain["chain_aborts"] > 0
        assert quorum["chain_aborts"] == 0
        assert quorum["put_success_rate"] > chain["put_success_rate"]

    def test_handoff_reduces_loss_or_staleness(self, bundle):
        on = run_cell(bundle)
        off = run_cell(
            bundle,
            policy=ReplicationPolicy(
                replicas=2, consistency="quorum", hinted_handoff=False
            ),
        )
        assert on["hints_replayed"] > 0 and off["hints_replayed"] == 0
        assert (on["loss_probability"], on["stale_probability"]) <= (
            off["loss_probability"],
            off["stale_probability"],
        )

    def test_fault_free_cell_is_lossless(self, bundle):
        cell = run_cell(bundle, churn_fraction=0.0)
        assert cell["loss_probability"] == 0.0
        assert cell["put_success_rate"] == 1.0
        assert cell["read_success_rate"] == 1.0
        assert cell["hints_queued"] == 0


class TestBenchDocument:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_bench_durability(
            seed=42,
            n_peers=N_PEERS,
            n_keys=N_KEYS,
            replication_factors=(0, 2),
            churn_fractions=(0.3,),
        )

    def test_shape(self, doc):
        assert doc["schema"] == SCHEMA
        assert set(doc) == {"schema", "config", "phases", "metrics"}
        # 1 stack-pair x 2 factors x 1 churn x 2 modes x 2 placements
        assert len(doc["metrics"]["cells"]) == 2 * 2 * 1 * 2 * 2
        assert set(doc["metrics"]["headline"]) == {
            "ring_locality",
            "chain_vs_quorum",
            "handoff_loss",
        }
        for stack in ("chord", "hieras"):
            assert set(doc["metrics"]["handoff"][stack]) == {"on", "off"}

    def test_metrics_reproduce_byte_for_byte(self, doc):
        again = run_bench_durability(
            seed=42,
            n_peers=N_PEERS,
            n_keys=N_KEYS,
            replication_factors=(0, 2),
            churn_fractions=(0.3,),
        )
        assert json.dumps(doc["metrics"], sort_keys=True) == json.dumps(
            again["metrics"], sort_keys=True
        )

    def test_chord_placements_identical(self, doc):
        """Flat Chord has one ring: ring_scoped must equal successor."""
        by_key = {}
        for c in doc["metrics"]["cells"]:
            if c["stack"] != "chord":
                continue
            scrubbed = {k: v for k, v in c.items() if k != "placement"}
            key = (c["replicas"], c["consistency"], c["placement"])
            by_key[key] = scrubbed
        for replicas in (0, 2):
            for mode in ("chain", "quorum"):
                assert (
                    by_key[(replicas, mode, "successor")]
                    == by_key[(replicas, mode, "ring_scoped")]
                )

    def test_write_bench(self, doc, tmp_path):
        path = write_bench_durability(doc, tmp_path / "BENCH_durability.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"] == doc["metrics"]
