"""Tests for the discrete-event engine and message network."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Message, SimNetwork
from repro.sim.node import SimNode
from repro.topology.latency import CoordinateLatencyModel


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "late")
        sim.schedule(1.0, out.append, "early")
        sim.schedule(3.0, out.append, "mid")
        sim.run()
        assert out == ["early", "mid", "late"]
        assert sim.now == 5.0

    def test_fifo_at_equal_time(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_cancel(self):
        sim = Simulator()
        out = []
        handle = sim.schedule(1.0, out.append, "x")
        handle.cancel()
        assert not handle.alive
        sim.run()
        assert out == []

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def outer():
            out.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            out.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert out == [("outer", 1.0), ("inner", 3.0)]

    def test_until_leaves_future_events(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(10.0, out.append, "b")
        sim.run(until=5.0)
        assert out == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert out == ["a", "b"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=50)

    def test_max_events_boundary_exact(self):
        """run(max_events=N) processes exactly N events, no off-by-one:
        a queue of N events drains fine, N+1 raises after N callbacks."""
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(float(i), out.append, i)
        sim.run(max_events=5)
        assert out == [0, 1, 2, 3, 4]

        sim2 = Simulator()
        fired = []
        for i in range(6):
            sim2.schedule(float(i), fired.append, i)
        with pytest.raises(RuntimeError, match="max_events=5"):
            sim2.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]  # the 6th event never ran

    def test_max_events_ignores_cancelled_tail(self):
        """Budget exhaustion with only cancelled events left returns
        instead of raising."""
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        dead = sim.schedule(2.0, out.append, "b")
        dead.cancel()
        sim.run(max_events=1)
        assert out == ["a"]

    def test_max_events_respects_until(self):
        """A live event beyond `until` must not trip the budget error."""
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "a")
        sim.schedule(50.0, out.append, "late")
        sim.run(until=10.0, max_events=1)
        assert out == ["a"] and sim.now == 10.0

    def test_schedule_at(self):
        sim = Simulator()
        out = []
        sim.schedule_at(4.0, out.append, "x")
        sim.run()
        assert sim.now == 4.0
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, out.append, "past")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_step(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        assert sim.step() is True
        assert sim.step() is False
        assert out == [1]


class EchoNode(SimNode):
    """Test node: records deliveries; replies to 'ping' with 'pong'."""

    def __init__(self, *args):
        super().__init__(*args)
        self.received: list[Message] = []

    def handle_message(self, message: Message) -> None:
        self.received.append(message)
        if message.kind == "ping":
            self.reply(message, "pong")


class TestSimNetwork:
    @pytest.fixture()
    def net(self):
        sim = Simulator()
        coords = np.asarray([[0.0, 0.0], [30.0, 40.0], [60.0, 80.0]])
        network = SimNetwork(sim, CoordinateLatencyModel(coords))
        nodes = [EchoNode(i, sim, network) for i in range(3)]
        return sim, network, nodes

    def test_delivery_delay_is_latency(self, net):
        sim, network, nodes = net
        nodes[0].send(1, "ping")
        sim.run()
        assert len(nodes[1].received) == 1
        # 3-4-5 triangle: delay 50 ms each way.
        assert sim.now == 100.0
        assert nodes[0].received[0].kind == "pong"

    def test_local_send_zero_delay(self, net):
        sim, network, nodes = net
        nodes[0].send(0, "note")
        sim.run()
        assert sim.now == 0.0
        assert nodes[0].received[0].kind == "note"

    def test_failed_node_drops(self, net):
        sim, network, nodes = net
        nodes[1].fail()
        nodes[0].send(1, "ping")
        sim.run()
        assert nodes[1].received == []
        assert network.messages_dropped == 1

    def test_unregistered_peer_drops(self, net):
        sim, network, nodes = net
        network.unregister(2)
        nodes[0].send(2, "ping")
        sim.run()
        assert network.messages_dropped == 1

    def test_stats(self, net):
        sim, network, nodes = net
        nodes[0].send(1, "ping")
        sim.run()
        stats = network.stats()
        assert stats["messages_sent"] == 2.0  # ping + pong
        assert stats["mean_delay_ms"] == 50.0
        assert network.sent_by_kind == {"ping": 1, "pong": 1}

    def test_stats_reports_losses_and_kinds(self, net):
        sim, network, nodes = net
        network.loss_rate = 0.5
        for _ in range(100):
            nodes[0].send(1, "probe")
        sim.run()
        stats = network.stats()
        assert stats["messages_lost"] == float(network.messages_lost)
        assert 20 < network.messages_lost < 80
        assert stats["sent_by_kind"] == {"probe": 100}

    def test_lost_messages_contribute_no_delay(self, net):
        """total_delay_ms / mean_delay_ms must only count messages that
        actually crossed a link (regression: losses used to inflate it)."""
        sim, network, nodes = net
        network.loss_rate = 0.5
        for _ in range(100):
            nodes[0].send(1, "probe")
        sim.run()
        delivered = network.messages_sent - network.messages_lost
        assert network.total_delay_ms == 50.0 * delivered
        assert network.stats()["mean_delay_ms"] == 50.0
        assert len(nodes[1].received) == delivered

    def test_drop_filter_blocks_and_counts(self, net):
        sim, network, nodes = net
        network.drop_filter = lambda src, dst: dst == 2
        nodes[0].send(1, "ok")
        nodes[0].send(2, "blocked")
        sim.run()
        assert network.messages_lost == 1
        assert [m.kind for m in nodes[1].received] == ["ok"]
        assert nodes[2].received == []
        # local delivery bypasses the filter entirely
        nodes[2].send(2, "self")
        sim.run()
        assert [m.kind for m in nodes[2].received] == ["self"]

    def test_duplicate_registration_rejected(self, net):
        sim, network, nodes = net
        with pytest.raises(ValueError):
            EchoNode(1, sim, network)

    def test_timers_stop_on_fail(self, net):
        sim, network, nodes = net
        fired = []
        nodes[0].after(5.0, fired.append, "x")
        nodes[0].fail()
        sim.run()
        assert fired == []

    def test_timer_fires_when_alive(self, net):
        sim, network, nodes = net
        fired = []
        nodes[0].after(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 5.0

    def test_contains_and_peers(self, net):
        _, network, _ = net
        assert 0 in network and 5 not in network
        assert network.peers() == [0, 1, 2]
