"""Legacy setup shim.

The offline environment lacks the `wheel` package, so modern editable
installs (`pip install -e .`, which builds an editable wheel) fail with
"invalid command 'bdist_wheel'".  `python setup.py develop` and this shim
keep editable installs working; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
