#!/usr/bin/env python
"""File-sharing workload: the application the paper's intro motivates.

Simulates a Napster/Gnutella-style file service on top of HIERAS: a
catalogue of files is published into the DHT (each file key stored at
its owner), then peers issue Zipf-distributed lookups (hot files
dominate, as in real file-sharing traces).  Reports per-lookup latency
for HIERAS vs flat Chord and shows that the win holds under skewed,
repeated workloads — not just the paper's uniform keys.

Run:  python examples/file_sharing.py
"""

import numpy as np

from repro import quick_network
from repro.analysis.stats import collect_routes, ratio_percent, summarize
from repro.workloads.requests import generate_requests


class FileService:
    """A minimal keyed file-location service over a DHT network."""

    def __init__(self, network, space):
        self.network = network
        self.space = space
        self.locations: dict[int, list[int]] = {}

    def publish(self, filename: str, holder_peer: int) -> int:
        """Store `holder_peer` as a location for `filename`."""
        key = self.space.hash_key(filename)
        self.locations.setdefault(key, []).append(holder_peer)
        return key

    def lookup(self, source_peer: int, filename: str):
        """Route to the file's owner; returns (locations, route)."""
        key = self.space.hash_key(filename)
        route = self.network.route(source_peer, key)
        return self.locations.get(key, []), route


def main() -> None:
    n_peers = 600
    bundle = quick_network(n_peers=n_peers, n_landmarks=4, seed=11)
    space = bundle.hieras.space
    rng = np.random.default_rng(1)

    # Publish a catalogue: every file has 1-3 random holders.
    service = FileService(bundle.hieras, space)
    catalog = [f"file-{i}" for i in range(2000)]
    for name in catalog:
        for _ in range(int(rng.integers(1, 4))):
            service.publish(name, int(rng.integers(0, n_peers)))

    # One end-to-end lookup, shown in full.
    locations, route = service.lookup(5, "file-42")
    print(f'lookup("file-42") from peer 5:')
    print(f"  owner peer {route.owner}, {route.hops} hops, "
          f"{route.latency_ms:.0f}ms, holders: {locations}")
    print()

    # Bulk Zipf workload through both stacks.
    trace = generate_requests(
        15_000, n_peers, space, seed=2, key_dist="zipf", catalog_size=2000
    )
    chord_sample = collect_routes(bundle.chord, trace)
    hieras_sample = collect_routes(bundle.hieras, trace)

    print("Zipf file-lookup workload (15k requests, 2k files):")
    for name, sample in (("chord", chord_sample), ("hieras", hieras_sample)):
        stats = summarize(sample.latency_ms)
        print(
            f"  {name:>6}: mean {stats['mean']:7.1f}ms  median {stats['median']:7.1f}ms  "
            f"p90 {stats['p90']:7.1f}ms  p99 {stats['p99']:7.1f}ms"
        )
    print(
        f"  HIERAS mean latency is "
        f"{ratio_percent(hieras_sample.mean_latency_ms, chord_sample.mean_latency_ms):.1f}% "
        "of Chord's"
    )

    # ------------------------------------------------------------------
    # The assembled application: a churn-tolerant service over rounds.
    # ------------------------------------------------------------------
    from repro.apps.filesharing import FileSharingSystem

    print("\nrunning the assembled service for 6 rounds with churn "
          "(3 crashes + 3 rejoins per round, replicas=2):")
    service = FileSharingSystem(
        bundle.hieras, catalog_size=1000, replicas=2, seed=3
    )
    for m in service.run(6, queries_per_round=200, churn_per_round=3):
        print(
            f"  round {m.round_index}: online={m.online_peers} "
            f"success={100 * m.success_rate:5.1f}% "
            f"latency={m.mean_latency_ms:6.1f}ms "
            f"repair_moves={m.keys_moved_by_repair}"
        )
    summary = service.summary()
    print(f"  availability over all rounds: {100 * summary['availability']:.2f}% "
          f"(replication absorbs the churn)")


if __name__ == "__main__":
    main()
