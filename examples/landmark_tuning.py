#!/usr/bin/env python
"""Landmark tuning: how many landmarks, how deep a hierarchy?

Sweeps the two deployment knobs the paper studies in §4.4–§4.5 — the
number of landmark nodes and the hierarchy depth — on one network, and
prints the latency/state trade-off so an operator can pick a
configuration.  Ends with the §3.4-style state-cost summary for the
chosen point.

Run:  python examples/landmark_tuning.py
"""

from repro.analysis.stats import collect_routes, ratio_percent
from repro.analysis.tables import format_table
from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.core.maintenance import measured_state_cost
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace


def main() -> None:
    n_peers = 1500
    n_requests = 8000

    print("sweep 1: landmark count (depth 2)")
    rows = []
    for n_landmarks in (2, 4, 6, 8, 12):
        config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=n_landmarks, seed=33)
        bundle = build_bundle(config)
        trace = make_trace(bundle, n_requests)
        chord = collect_routes(bundle.chord, trace)
        hieras = collect_routes(bundle.hieras, trace)
        rows.append(
            {
                "landmarks": n_landmarks,
                "rings": len(bundle.hieras.rings_at_layer(2)),
                "latency_vs_chord_%": round(
                    ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms), 1
                ),
                "hops": round(hieras.mean_hops, 2),
            }
        )
    print(format_table(rows))
    print("paper: too few landmarks ≈ useless; sweet spot ≈ 6-8; flat after\n")

    print("sweep 2: hierarchy depth (6 landmarks)")
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=6, seed=33)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_requests)
    chord = collect_routes(bundle.chord, trace)
    rows = []
    for depth in (2, 3, 4):
        scheme = BinningScheme.default_for_depth(depth)
        orders = scheme.orders(bundle.orders.distances)
        net = HierasNetwork(
            bundle.space,
            bundle.node_ids,
            latency=bundle.peer_latency,
            landmark_orders=orders,
            depth=depth,
        )
        sample = collect_routes(net, trace)
        cost = measured_state_cost(net, sample=32)
        rows.append(
            {
                "depth": depth,
                "latency_vs_chord_%": round(
                    ratio_percent(sample.mean_latency_ms, chord.mean_latency_ms), 1
                ),
                "hops": round(sample.mean_hops, 2),
                "state_entries/node": round(cost.total_entries, 1),
                "state_bytes/node": int(cost.total_bytes),
            }
        )
    print(format_table(rows))
    print("paper §4.5: depth 3 adds ~10-16% latency gain, depth 4 little more;")
    print("§3.4: the extra state stays in the hundreds-of-bytes range.")


if __name__ == "__main__":
    main()
