#!/usr/bin/env python
"""Quickstart: build a HIERAS network and route a few lookups.

Builds a small transit-stub internetwork, attaches 500 peers, bins them
into lower-layer rings with 4 landmarks (the paper's default), and
compares a handful of lookups against flat Chord — the 60-second version
of the paper's whole evaluation.

Run:  python examples/quickstart.py
"""

from repro import quick_network


def main() -> None:
    bundle = quick_network(n_peers=500, n_landmarks=4, depth=2, seed=7)
    hieras = bundle.hieras

    print(f"peers: {hieras.n_peers}")
    print(f"layer-2 rings: {len(hieras.rings_at_layer(2))} "
          f"(sizes {sorted(int(s) for s in hieras.ring_sizes(2))})")
    print()

    print(f"{'key':>12} {'owner id':>12} {'chord':>14} {'hieras':>14}")
    total_chord = total_hieras = 0.0
    for key in (42, 10_000, 123_456_789, 2**31, 2**32 - 1):
        rc = bundle.route_chord(source=0, key=key)
        rh = bundle.route(source=0, key=key)
        assert rc.owner == rh.owner, "both stacks must agree on the owner"
        total_chord += rc.latency_ms
        total_hieras += rh.latency_ms
        print(
            f"{key:>12} {hieras.id_of(rh.owner):>12} "
            f"{rc.hops:>3} hops {rc.latency_ms:>6.0f}ms "
            f"{rh.hops:>3} hops {rh.latency_ms:>6.0f}ms"
        )

    print()
    print(f"HIERAS total latency: {total_hieras:.0f}ms "
          f"({100 * total_hieras / total_chord:.0f}% of Chord's {total_chord:.0f}ms)")

    # Where did the HIERAS hops go?  Mostly into cheap lower-ring links.
    r = bundle.route(source=3, key=987654321)
    print(f"\nexample route from peer 3: path {r.path}")
    print(f"hops per layer (lowest→global): {r.hops_per_layer}")


if __name__ == "__main__":
    main()
