#!/usr/bin/env python
"""Drive the message-level HIERAS protocol: joins, failures, lookups.

Everything in the other examples uses the trace-driven stack (routing
tables derived from authoritative membership).  This example runs the
*protocol* (§3.3) on the discrete-event engine instead: nodes join
through a bootstrap, fetch ring tables from their hosts, build per-ring
state via stabilization, survive crashes — and the lookups still
resolve to the right owners.

Run:  python examples/churn_protocol.py
"""

import numpy as np

from repro.core.hieras_protocol import HierasProtocolNode
from repro.dht.base import ZeroLatency
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.util.ids import IdSpace


def main() -> None:
    space = IdSpace(16)
    rng = np.random.default_rng(3)
    n = 30
    ids = space.sample_unique_ids(n, rng)
    # Three lower-layer rings, as if binning had produced them.
    ring_names = [[str(p % 3)] for p in range(n)]

    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency())
    nodes = [HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)]

    print("founding the system and joining 29 more nodes...")
    nodes[0].found_system(ring_names[0], landmark_table=[101, 102, 103])
    t = 0.0
    for p in range(1, n):
        t += 300.0
        sim.schedule_at(t, nodes[p].join_system, 0, ring_names[p])
    sim.run(until=t + 60_000, max_events=10_000_000)
    print(f"  all joined: {all(node.joined for node in nodes)}; "
          f"{net.messages_sent} protocol messages, sim time {sim.now / 1000:.0f}s")

    hosts = {name: p for p, node in enumerate(nodes) for name in node.stored_ring_tables}
    print(f"  ring tables hosted at: {hosts}")

    print("\ncrashing 3 nodes...")
    for victim in (4, 11, 23):
        nodes[victim].fail()
        net.unregister(victim)
    sim.run(until=sim.now + 60_000, max_events=10_000_000)

    live = [p for p in range(n) if nodes[p].alive]
    live_ids = np.sort([int(ids[p]) for p in live])

    print("issuing 50 hierarchical lookups...")
    results = []
    for _ in range(50):
        source = int(rng.choice(live))
        key = int(rng.integers(0, space.size))
        nodes[source].hieras_lookup(key, results.append)
    sim.run(until=sim.now + 60_000, max_events=10_000_000)

    correct = sum(
        1
        for out in results
        if out.owner_id
        == int(live_ids[np.searchsorted(live_ids, out.key) % len(live)])
    )
    low = sum(sum(o.hops_per_layer[:-1]) for o in results)
    total = sum(o.hops for o in results)
    print(f"  completed {len(results)}/50, correct owners {correct}/{len(results)}")
    print(f"  avg hops {total / len(results):.2f}, "
          f"{100 * low / max(total, 1):.0f}% taken in lower rings")


if __name__ == "__main__":
    main()
