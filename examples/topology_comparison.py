#!/usr/bin/env python
"""Compare HIERAS across the paper's three topology families (§4.1).

Builds a transit-stub, an Inet-style and a BRITE-style internetwork at
the same overlay size, runs the same trace through Chord and HIERAS on
each, and prints a Figure-3-style summary — showing that the latency
win is a property of Internet-like delay structure, not of one
generator.

Run:  python examples/topology_comparison.py
"""

from repro.analysis.stats import collect_routes, ratio_percent
from repro.analysis.tables import format_table
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace


def main() -> None:
    n_peers = 2500  # Inet's floor is 3000 routers ≈ 2400 peers
    rows = []
    for model in ("ts", "inet", "brite"):
        config = SimConfig(model=model, n_peers=n_peers, n_landmarks=4, seed=21)
        bundle = build_bundle(config)
        trace = make_trace(bundle, 10_000)
        chord = collect_routes(bundle.chord, trace)
        hieras = collect_routes(bundle.hieras, trace)
        rows.append(
            {
                "model": model,
                "rings": len(bundle.hieras.rings_at_layer(2)),
                "chord_hops": round(chord.mean_hops, 2),
                "hieras_hops": round(hieras.mean_hops, 2),
                "chord_ms": round(chord.mean_latency_ms, 0),
                "hieras_ms": round(hieras.mean_latency_ms, 0),
                "hieras/chord_%": round(
                    ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms), 1
                ),
                "low_hop_%": round(100 * hieras.low_layer_hop_share, 1),
            }
        )
        print(f"{model}: done")

    print()
    print(f"{n_peers} peers, 10k uniform lookups, 4 landmarks, depth 2")
    print(format_table(rows))
    print()
    print("paper (fig 3): HIERAS latency ≈ 51.8% (TS), 53.4% (Inet), "
          "62.5% (BRITE) of Chord")


if __name__ == "__main__":
    main()
