#!/usr/bin/env python
"""A self-contained evaluation report with error bars and charts.

Demonstrates the analysis toolkit end to end: run a small seed-replicated
sweep, compute paired bootstrap confidence intervals for the headline
latency ratio, and render terminal charts — the methodology layer a
reproduction adds on top of the paper's single-run point estimates.

Run:  python examples/evaluation_report.py
"""

import numpy as np

from repro.analysis.compare import bootstrap_ratio_ci, compare_means
from repro.analysis.plots import bar_chart, line_plot, sparkline
from repro.analysis.stats import collect_routes, hop_pdf
from repro.analysis.tables import format_table
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace
from repro.experiments.sweep import SweepSpec, run_sweep


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One deployment in depth: paired CI for the latency ratio.
    # ------------------------------------------------------------------
    config = SimConfig(model="ts", n_peers=1200, n_landmarks=6, seed=7)
    bundle = build_bundle(config)
    trace = make_trace(bundle, 8000)
    chord = collect_routes(bundle.chord, trace)
    hieras = collect_routes(bundle.hieras, trace)

    ci = bootstrap_ratio_ci(hieras.latency_ms, chord.latency_ms, seed=1)
    print(f"{config.n_peers} peers, 6 landmarks, {len(trace)} paired lookups")
    print(
        f"HIERAS/Chord latency ratio: {100 * ci.estimate:.1f}% "
        f"(95% CI [{100 * ci.low:.1f}, {100 * ci.high:.1f}])"
    )
    verdict = compare_means(chord.latency_ms, hieras.latency_ms, seed=2)
    print(
        f"mean saving per lookup: {verdict['mean_diff']:.0f}ms "
        f"(significant: {verdict['significant']}, d={verdict['cohens_d']:.2f})"
    )

    # ------------------------------------------------------------------
    # 2. Hop distribution as a chart (Figure 4's shape).
    # ------------------------------------------------------------------
    xs, pdf = hop_pdf(hieras.hops)
    print()
    print(bar_chart([f"{h}h" for h in xs], pdf.tolist(), width=40,
                    title="HIERAS hops per lookup:"))

    # ------------------------------------------------------------------
    # 3. Seed-replicated mini sweep with a trend chart.
    # ------------------------------------------------------------------
    print("\nsweeping landmark counts over 3 seeds...")
    spec = SweepSpec(
        models=("ts",), sizes=(1200,), landmarks=(2, 4, 8),
        depths=(2,), seeds=(7, 8, 9), n_requests=4000,
    )
    rows = run_sweep(spec)
    by_lm: dict[int, list[float]] = {}
    for row in rows:
        by_lm.setdefault(int(row["n_landmarks"]), []).append(
            float(row["latency_ratio_pct"])
        )
    summary = [
        {
            "landmarks": lm,
            "ratio_mean_%": round(float(np.mean(vals)), 1),
            "ratio_std_%": round(float(np.std(vals)), 2),
            "trend": sparkline(vals),
        }
        for lm, vals in sorted(by_lm.items())
    ]
    print(format_table(summary))
    print()
    print(
        line_plot(
            sorted(by_lm),
            {"latency_ratio_%": [float(np.mean(by_lm[lm])) for lm in sorted(by_lm)]},
            width=40,
            height=8,
            x_label="landmarks",
            title="latency ratio vs landmark count (3-seed mean):",
        )
    )


if __name__ == "__main__":
    main()
