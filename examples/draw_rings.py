#!/usr/bin/env python
"""Export Graphviz drawings of a deployment's structure.

Writes two DOT files next to this script:

* ``topology.dot`` — the router graph, transit core highlighted;
* ``rings.dot``   — the HIERAS layer-2 ring partition as clusters,
  each ring's Chord successor cycle drawn inside.

Render them with Graphviz if available:  ``dot -Tsvg rings.dot -o rings.svg``
(``sfdp``/``fdp`` work better for the larger topology graph).

Run:  python examples/draw_rings.py
"""

from pathlib import Path

from repro import quick_network
from repro.topology.export import rings_to_dot, topology_to_dot


def main() -> None:
    bundle = quick_network(n_peers=120, n_landmarks=4, depth=2, seed=13)
    out_dir = Path(__file__).resolve().parent

    topo_dot = topology_to_dot(bundle.topology, max_routers=bundle.topology.n_routers)
    (out_dir / "topology.dot").write_text(topo_dot, encoding="utf-8")
    print(f"wrote {out_dir / 'topology.dot'} "
          f"({bundle.topology.n_routers} routers, {bundle.topology.n_edges} links)")

    ring_dot = rings_to_dot(bundle.hieras, layer=2)
    (out_dir / "rings.dot").write_text(ring_dot, encoding="utf-8")
    rings = bundle.hieras.rings_at_layer(2)
    print(f"wrote {out_dir / 'rings.dot'} ({len(rings)} rings: "
          f"{ {name: len(r) for name, r in sorted(rings.items())} })")

    print("\nrender with:  dot -Tsvg examples/rings.dot -o rings.svg")


if __name__ == "__main__":
    main()
